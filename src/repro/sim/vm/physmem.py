"""The memory manager: physical page pools shared by files and processes.

Two pool arrangements exist, selected by the platform personality:

* **unified** (linux22, solaris7): one replacement pool holds file data
  pages, metadata pages, and anonymous pages.  A process growing its heap
  steals from the file cache and vice versa — the contention fastsort
  suffers from in Figure 3 and the property MAC relies on in §4.3.
* **split** (netbsd15): file and metadata pages live in a fixed-size
  buffer cache; anonymous pages get the remainder.

The manager never performs I/O.  Faults and inserts return the list of
victim pages that must be written back (anon pages get a swap slot
assigned here); the kernel turns those into clustered disk writes and
charges the faulting process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional, Sequence

from repro.obs import DISABLED, Observability
from repro.sim.cache.base import (
    AnonKey,
    CachePolicy,
    CacheStats,
    FileKey,
    MetaKey,
    PageEntry,
    PageKey,
)
from repro.sim.config import MachineConfig, PlatformSpec
from repro.sim.errors import OutOfMemory
from repro.sim.vm.pagedaemon import PageDaemonStats
from repro.sim.vm.residency import ResidencyIndex
from repro.sim.vm.swap import SwapSpace


class FaultKind(Enum):
    """What servicing an anonymous-page touch required."""

    RESIDENT = "resident"
    ZERO_FILL = "zero_fill"
    SWAP_IN = "swap_in"


@dataclass
class FaultResult:
    """Outcome of an anonymous fault: its kind plus any eviction work."""

    kind: FaultKind
    evictions: List[PageEntry] = field(default_factory=list)
    swapin_slot: Optional[int] = None


class MemoryManager:
    """Owns the page pools, swap space, and reclaim accounting."""

    def __init__(
        self,
        config: MachineConfig,
        platform: PlatformSpec,
        swap_capacity_pages: int,
        obs: Optional[Observability] = None,
    ) -> None:
        self.config = config
        self.platform = platform
        self.obs = obs if obs is not None else DISABLED
        self.swap = SwapSpace(swap_capacity_pages)
        self.daemon_stats = PageDaemonStats()
        self._anon_resident: Dict[int, int] = {}
        self._dirty_file_pages = 0
        # Who inserted each resident file/meta page (anon keys carry
        # their pid already).  Host-side attribution metadata, kept only
        # when obs is enabled and a process is current; what lets a
        # reclaim event name its victims, not just its instigator.
        self._page_owner: Dict[PageKey, int] = {}

        plan = platform.make_pools(config)
        self._file_pool: CachePolicy = plan.file_pool
        self._file_capacity = plan.file_capacity_pages
        self._anon_pool: CachePolicy = plan.anon_pool
        self._anon_capacity = plan.anon_capacity_pages
        self._unified = plan.unified

        # Array-backed residency mirrors (see repro.sim.vm.residency):
        # per-(fs_id, ino) file-page presence and per-pid anon-page
        # presence, each paired with the pool's per-page replay cells.
        # Every insert/remove below keeps them exact, so the vectorized
        # fault and read paths can test whole-run membership with one
        # numpy op.  MetaKeys are not mirrored — no batch path needs
        # them, and their block numbers are too sparse for dense arrays.
        self._file_index = ResidencyIndex()
        self._anon_index = ResidencyIndex()

        # File-eviction epoch: bumped whenever any page might leave the
        # file pool (reclaim victims, explicit drops).  While the epoch
        # is unchanged, a key sequence once verified fully resident is
        # *still* fully resident — inserts never remove — so the stat
        # fast path can skip membership checks and use the policy's
        # replay token (see CachePolicy.replay_token).  Plain attribute
        # (not a property): it is read once per fast-path probe.
        self.file_epoch: int = 0
        #: Bound pass-throughs for the per-probe fast path — one call
        #: deep instead of a wrapper method per probe.
        self.replay_file_touches = self._file_pool.replay
        self.file_replay_token = self._file_pool.replay_token

        # Pull-style sources: read only when metrics are collected.  In
        # unified mode one pool serves both roles, so "cache.file"
        # covers every page class.  Never registered on the shared
        # DISABLED instance — its registry must stay empty.
        if self.obs.enabled:
            self.obs.metrics.register_stats("vm.daemon", self.daemon_stats)
            self.obs.metrics.register_stats("cache.file", self._file_pool.stats)
            if not self._unified:
                self.obs.metrics.register_stats(
                    "cache.anon", self._anon_pool.stats
                )
        # Fault-kind counters are on the page-touch hot path; cache the
        # instrument references and branch on ``enabled`` directly.
        self._fault_counters = {
            FaultKind.RESIDENT: self.obs.metrics.counter("vm.fault.resident"),
            FaultKind.ZERO_FILL: self.obs.metrics.counter("vm.fault.zero_fill"),
            FaultKind.SWAP_IN: self.obs.metrics.counter("vm.fault.swap_in"),
        }

    # ------------------------------------------------------------------
    # Capacity / occupancy
    # ------------------------------------------------------------------
    @property
    def unified(self) -> bool:
        return self._unified

    @property
    def file_capacity_pages(self) -> int:
        return self._file_capacity

    def file_pool_used(self) -> int:
        return len(self._file_pool)

    def anon_pool_used(self) -> int:
        return len(self._anon_pool)

    def resident_anon_pages(self, pid: int) -> int:
        return self._anon_resident.get(pid, 0)

    def file_pool_stats(self) -> CacheStats:
        """Hit/miss/eviction accounting of the (unified or file) pool."""
        return self._file_pool.stats

    def anon_pool_stats(self) -> CacheStats:
        return self._anon_pool.stats

    # ------------------------------------------------------------------
    # Reclaim (the page daemon)
    # ------------------------------------------------------------------
    def _reclaim(self, pool: CachePolicy, capacity: int, incoming: int) -> List[PageEntry]:
        """Make room for ``incoming`` pages; returns victims needing disposal."""
        shortfall = len(pool) + incoming - capacity
        if shortfall <= 0:
            return []
        batch = max(shortfall, self.config.reclaim_batch_pages)
        victims = pool.pop_victims(batch)
        if victims and pool is self._file_pool:
            # Pages left the file pool (or, on the OutOfMemory undo
            # below, were re-inserted as fresh frames): either way any
            # outstanding replay token may now be stale.
            self.file_epoch += 1
        if len(victims) < shortfall:
            # Pool cannot shrink enough: the machine is truly out of memory.
            for entry in victims:
                pool.touch(entry.key, entry.dirty)  # undo
                # Re-inserting allocates fresh cells; the residency
                # mirrors still carry the pre-eviction ones, so point
                # them at the new cells before anything replays them.
                key = entry.key
                if isinstance(key, AnonKey):
                    self._anon_index.set(key.pid, key.index, pool.resident_cell(key))
                elif isinstance(key, FileKey):
                    self._file_index.set(
                        (key.fs_id, key.ino), key.index, pool.resident_cell(key)
                    )
            raise OutOfMemory(
                f"cannot reclaim {shortfall} pages (pool has {len(pool)})"
            )
        stats = self.daemon_stats
        stats.activations += 1
        stats.pages_reclaimed += len(victims)
        anon = file_written = file_dropped = meta = 0
        owners = self._page_owner
        victims_by_pid: Dict[int, int] = {}
        for entry in victims:
            key = entry.key
            if isinstance(key, AnonKey):
                anon += 1
                self._anon_resident[key.pid] = self._anon_resident.get(key.pid, 1) - 1
                self.swap.swap_out(key)
                self._anon_index.clear(key.pid, key.index)
                owner: Optional[int] = key.pid
            else:
                owner = owners.pop(key, None)
                if isinstance(key, FileKey):
                    self._file_index.clear((key.fs_id, key.ino), key.index)
                    if entry.dirty:
                        file_written += 1
                        self._dirty_file_pages -= 1
                    else:
                        file_dropped += 1
                elif isinstance(key, MetaKey):
                    if entry.dirty:
                        self._dirty_file_pages -= 1
                    meta += 1
            # Pid 0 stands for "unattributed" — pages inserted host-side
            # (setup writes, daemon work) before any process ran.
            victims_by_pid[owner if owner is not None else 0] = (
                victims_by_pid.get(owner if owner is not None else 0, 0) + 1
            )
        stats.anon_pages_swapped += anon
        stats.file_pages_written += file_written
        stats.file_pages_dropped += file_dropped
        stats.meta_pages_dropped += meta
        if self.obs.enabled:
            # Whose miss forced the eviction (the currently-dispatched
            # pid, 0 host-side) and whose pages died.  victim_pid is the
            # majority owner, smallest pid on ties — deterministic, and
            # exactly one (instigator, victim) pair per reclaim event so
            # interference-matrix cell sums equal the reclaim count.
            instigator = self.obs.current_pid
            victim = min(
                victims_by_pid,
                key=lambda p: (-victims_by_pid[p], p),
            )
            self.obs.event(
                "kernel.reclaim",
                pages=len(victims),
                anon=anon,
                file_written=file_written,
                file_dropped=file_dropped,
                meta=meta,
                instigator_pid=instigator if instigator is not None else 0,
                victim_pid=victim,
                victims_by_pid=victims_by_pid,
            )
        return victims

    # ------------------------------------------------------------------
    # File / metadata pages
    # ------------------------------------------------------------------
    def file_cached(self, key: PageKey) -> bool:
        return self._file_pool.contains(key)

    def touch_file_cached(self, key: PageKey) -> bool:
        """Clean reference to an already-cached file page; True on a hit.

        The batched-read fast path.  On a hit, :meth:`touch_file` with
        ``dirty=False`` reduces to exactly the policy touch — the
        ``_reclaim`` probe it runs is provably a no-op, because inserts
        always reclaim the pool back under capacity first — so this skips
        straight to :meth:`CachePolicy.touch_cached`.  On a miss the
        caller must take the full :meth:`touch_file` path.
        """
        return self._file_pool.touch_cached(key)

    def touch_file_pages_resident(self, fs_id: int, ino: int, pages) -> bool:
        """Clean bulk touch of one file's pages; True iff all resident.

        ``pages`` is an integer numpy array of page indexes in probe
        order (duplicates allowed).  On True, pool state and hit counts
        are exactly what ``len(pages)`` successful
        :meth:`touch_file_cached` calls in that order would have left;
        on False nothing is mutated and the caller takes the scalar
        path.  One vectorized membership test replaces the per-probe
        key construction and dict probe.
        """
        cells = self._file_index.cells_at_if_all_present((fs_id, ino), pages)
        if cells is None:
            return False
        self._file_pool.reference_cells(cells, False)
        return True

    def touch_files_cached(self, keys: Sequence[PageKey]) -> bool:
        """All-or-nothing clean touch of a resident key sequence.

        The name-cache replay: when every key is cached this is exactly
        ``len(keys)`` hit-path :meth:`touch_file` calls (same hit counts,
        same recency updates, no victims — hits never over-fill the
        pool); when any key is absent nothing changes and the caller
        must take the slow walk.
        """
        return self._file_pool.touch_cached_many(keys)

    def touch_file(self, key: PageKey, dirty: bool = False) -> List[PageEntry]:
        """Reference (inserting if absent) a file or metadata page.

        Returns eviction work the caller must perform.  The caller is
        responsible for any read I/O needed to *fill* the page; check
        :meth:`file_cached` first to decide.
        """
        incoming = 0 if self._file_pool.contains(key) else 1
        victims = self._reclaim(self._file_pool, self._file_capacity, incoming)
        if dirty and not self._file_pool.is_dirty(key):
            self._dirty_file_pages += 1
        self._file_pool.touch(key, dirty)
        if incoming:
            if isinstance(key, FileKey):
                self._file_index.set(
                    (key.fs_id, key.ino), key.index,
                    self._file_pool.resident_cell(key),
                )
            if self.obs.enabled:
                pid = self.obs.current_pid
                if pid is not None:
                    self._page_owner[key] = pid
        return victims

    def drop_file_page(self, key: PageKey) -> bool:
        if self._file_pool.is_dirty(key):
            self._dirty_file_pages -= 1
        removed = self._file_pool.remove(key)
        if removed:
            self.file_epoch += 1
            self._page_owner.pop(key, None)
            if isinstance(key, FileKey):
                self._file_index.clear((key.fs_id, key.ino), key.index)
        return removed

    def mark_file_clean(self, key: PageKey) -> None:
        if self._file_pool.is_dirty(key):
            self._dirty_file_pages -= 1
        self._file_pool.mark_clean(key)

    @property
    def dirty_file_pages(self) -> int:
        return self._dirty_file_pages

    def oldest_dirty_file_keys(self, count: int) -> List[PageKey]:
        """The first ``count`` dirty file/meta pages in eviction order.

        These are what the bdflush-style throttle writes back; callers
        then invoke :meth:`writeback_complete` per key.
        """
        found: List[PageKey] = []
        for key in self._file_pool.keys():
            if isinstance(key, AnonKey):
                continue
            if self._file_pool.is_dirty(key):
                found.append(key)
                if len(found) >= count:
                    break
        return found

    def writeback_complete(self, key: PageKey) -> None:
        """Mark a flushed page clean and demote it to recycle first."""
        self.mark_file_clean(key)
        self._file_pool.demote(key)

    def file_page_dirty(self, key: PageKey) -> bool:
        return self._file_pool.is_dirty(key)

    def file_keys(self) -> Iterator[PageKey]:
        """All file/meta keys (oracle use).  In unified mode filters anon."""
        for key in self._file_pool.keys():
            if not isinstance(key, AnonKey):
                yield key

    def dirty_file_keys(self) -> List[PageKey]:
        return [k for k in self.file_keys() if self._file_pool.is_dirty(k)]

    # ------------------------------------------------------------------
    # Anonymous pages
    # ------------------------------------------------------------------
    def anon_fault(self, key: AnonKey, touched_before: bool) -> FaultResult:
        """Service a write to an anonymous page.

        ``touched_before`` comes from the address space: an untouched page
        zero-fills, a touched-but-nonresident page swaps in.
        """
        enabled = self.obs.enabled
        if self._anon_pool.contains(key):
            self._anon_pool.touch(key, dirty=True)
            if enabled:
                self._fault_counters[FaultKind.RESIDENT].value += 1
            return FaultResult(FaultKind.RESIDENT)

        victims = self._reclaim(self._anon_pool, self._anon_capacity, 1)
        self._anon_pool.touch(key, dirty=True)
        self._anon_index.set(
            key.pid, key.index, self._anon_pool.resident_cell(key)
        )
        self._anon_resident[key.pid] = self._anon_resident.get(key.pid, 0) + 1

        if touched_before and self.swap.slot_of(key) is not None:
            slot = self.swap.swap_in(key)
            if enabled:
                self._fault_counters[FaultKind.SWAP_IN].value += 1
            return FaultResult(FaultKind.SWAP_IN, victims, swapin_slot=slot)
        if enabled:
            self._fault_counters[FaultKind.ZERO_FILL].value += 1
        return FaultResult(FaultKind.ZERO_FILL, victims)

    def anon_fault_resident(self, key: AnonKey) -> bool:
        """RESIDENT-case anon fault without the FaultResult allocation.

        True when the page was resident, leaving pool state, dirty bit,
        and the fault counter exactly as :meth:`anon_fault`'s resident
        branch would; False means the caller must run the full fault.
        """
        if not self._anon_pool.touch_cached(key, dirty=True):
            return False
        if self.obs.enabled:
            self._fault_counters[FaultKind.RESIDENT].value += 1
        return True

    def anon_resident(self, key: AnonKey) -> bool:
        return self._anon_pool.contains(key)

    def touch_anon_resident_run(
        self, pid: int, start: int, stop: int, step: int = 1
    ) -> int:
        """Bulk RESIDENT-case fault over a strided page run.

        When every page of ``range(start, stop, step)`` (absolute page
        numbers) is resident, dirty-touch them all — pool state, hit
        counts, and the fault counter exactly as that many
        :meth:`anon_fault_resident` calls in order — and return the page
        count.  Returns 0 (nothing mutated) when any page is absent,
        sending the caller down the scalar fault path.  The membership
        test is one numpy slice, the touch one
        :meth:`~repro.sim.cache.base.CachePolicy.reference_cells` call.
        """
        cells = self._anon_index.cells_if_all_present(pid, start, stop, step)
        if cells is None:
            return 0
        self._anon_pool.reference_cells(cells, True)
        count = len(cells)
        if self.obs.enabled:
            self._fault_counters[FaultKind.RESIDENT].value += count
        return count

    def anon_zero_fill_run(self, pid: int, start: int, stop: int) -> bool:
        """Bulk ZERO_FILL: insert ``[start, stop)`` as one batch.

        Preconditions checked here: the pool has room for the whole run
        without reclaiming (so no intermediate step of the equivalent
        sequential faults would have evicted anything) and no page of
        the run is already resident.  The caller guarantees the pages
        were never touched (fresh region pages — so no swap slots
        exist).  On True, pool state, miss counts, per-pid residency,
        and the fault counter match ``stop - start`` sequential
        zero-fill faults; on False nothing is mutated.
        """
        count = stop - start
        pool = self._anon_pool
        if len(pool) + count > self._anon_capacity:
            return False
        if not self._anon_index.all_absent_run(pid, start, stop):
            return False
        keys = [AnonKey(pid, page) for page in range(start, stop)]
        cells = pool.insert_absent_many(keys, True)
        self._anon_index.register_run(pid, start, cells)
        self._anon_resident[pid] = self._anon_resident.get(pid, 0) + count
        if self.obs.enabled:
            self._fault_counters[FaultKind.ZERO_FILL].value += count
        return True

    def free_anon_pages(self, pid: int, keys: List[AnonKey]) -> int:
        """Release pages on vm_free/exit; returns pages actually resident.

        Free storms are region-sized (thousands of pages), so the loop
        binds the pool's remove once, batches the residency-mirror
        clears under a single owner lookup, and skips the swap-slot
        sweep entirely while no page of any process is swapped out —
        the common case for a machine that never came under pressure.
        """
        freed = 0
        remove = self._anon_pool.remove
        cleared: List[int] = []
        for key in keys:
            if remove(key):
                freed += 1
                cleared.append(key.index)
        if cleared:
            self._anon_index.clear_many(pid, cleared)
        if self.swap.in_use():
            discard = self.swap.discard
            for key in keys:
                discard(key)
        if freed:
            self._anon_resident[pid] = self._anon_resident.get(pid, freed) - freed
        return freed

    def release_process(self, pid: int, keys: List[AnonKey]) -> None:
        """Drop every page of an exiting process."""
        for key in keys:
            self._anon_pool.remove(key)
        self.swap.discard_process(pid)
        self._anon_resident.pop(pid, None)
        self._anon_index.drop_owner(pid)
