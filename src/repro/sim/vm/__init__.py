"""Virtual-memory subsystem: physical page pools, address spaces, swap.

The :class:`~repro.sim.vm.physmem.MemoryManager` owns every physical
page.  File pages and anonymous pages either share one replacement pool
(unified personalities: linux22, solaris7) or live in separate pools
(netbsd15's fixed buffer cache).  Eviction I/O is planned here and
*performed* by the kernel, which charges it to the faulting process —
that synchronous stall is the "slow data point" signal MAC detects.
"""

from repro.sim.vm.address_space import AddressSpace, Region
from repro.sim.vm.pagedaemon import PageDaemonStats
from repro.sim.vm.physmem import FaultKind, FaultResult, MemoryManager
from repro.sim.vm.swap import SwapSpace

__all__ = [
    "AddressSpace",
    "Region",
    "FaultKind",
    "FaultResult",
    "MemoryManager",
    "PageDaemonStats",
    "SwapSpace",
]
