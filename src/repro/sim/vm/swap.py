"""Swap-space slot accounting on the dedicated paging disk."""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from repro.sim.cache.base import AnonKey
from repro.sim.errors import OutOfMemory


class SwapSpace:
    """Allocates swap slots (one page each) on the swap disk.

    Slots are handed out lowest-first so pages evicted together land on
    contiguous disk blocks, which lets the kernel cluster the writeback
    into one large I/O — the behaviour that makes page-daemon activity
    visible as a few big stalls rather than uniform slowness.
    """

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages <= 0:
            raise ValueError("swap space needs at least one page")
        self.capacity_pages = capacity_pages
        self._next_fresh = 0
        self._free: List[int] = []
        self._slot_of: Dict[AnonKey, int] = {}

    @property
    def used_slots(self) -> int:
        return len(self._slot_of)

    @property
    def free_slots(self) -> int:
        return self.capacity_pages - self._next_fresh + len(self._free)

    def slot_of(self, key: AnonKey) -> Optional[int]:
        """Swap slot holding ``key``, or None if the page is not swapped."""
        return self._slot_of.get(key)

    def swap_out(self, key: AnonKey) -> int:
        """Assign a slot for an evicted anonymous page; returns the slot."""
        existing = self._slot_of.get(key)
        if existing is not None:
            return existing
        if self._free:
            slot = heapq.heappop(self._free)
        elif self._next_fresh < self.capacity_pages:
            slot = self._next_fresh
            self._next_fresh += 1
        else:
            raise OutOfMemory("swap space exhausted")
        self._slot_of[key] = slot
        return slot

    def swap_in(self, key: AnonKey) -> int:
        """Release the slot for a page being brought back; returns the slot."""
        slot = self._slot_of.pop(key, None)
        if slot is None:
            raise KeyError(f"{key} is not swapped out")
        heapq.heappush(self._free, slot)
        return slot

    def in_use(self) -> bool:
        """True while any slot is assigned (guards per-key discard sweeps)."""
        return bool(self._slot_of)

    def discard(self, key: AnonKey) -> None:
        """Free a slot for a page whose process freed or exited (no I/O)."""
        slot = self._slot_of.pop(key, None)
        if slot is not None:
            heapq.heappush(self._free, slot)

    def discard_process(self, pid: int) -> int:
        """Free every slot belonging to ``pid``; returns slots freed."""
        doomed = [key for key in self._slot_of if key.pid == pid]
        for key in doomed:
            self.discard(key)
        return len(doomed)
