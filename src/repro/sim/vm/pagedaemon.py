"""Page-daemon bookkeeping.

The daemon logic itself (watermarks, batch reclaim) lives in
:class:`~repro.sim.vm.physmem.MemoryManager`; this module holds the
observable side: activation counters that the oracle and the experiment
harness read, e.g. to assert that gb-fastsort "never exhibits paging
activity" (§4.3.3) while the over-committed static sort does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import SnapshotStats


@dataclass
class PageDaemonStats(SnapshotStats):
    """Counters for one memory pool's reclaim activity.

    ``snapshot()``/``delta()``/``as_dict()`` come from
    :class:`~repro.obs.metrics.SnapshotStats` — the same idiom
    :class:`~repro.sim.disk.DiskStats` uses, so per-phase deltas are one
    call on either object.
    """

    activations: int = 0
    pages_reclaimed: int = 0
    file_pages_dropped: int = 0
    file_pages_written: int = 0
    anon_pages_swapped: int = 0
    meta_pages_dropped: int = 0
