"""Page-daemon bookkeeping.

The daemon logic itself (watermarks, batch reclaim) lives in
:class:`~repro.sim.vm.physmem.MemoryManager`; this module holds the
observable side: activation counters that the oracle and the experiment
harness read, e.g. to assert that gb-fastsort "never exhibits paging
activity" (§4.3.3) while the over-committed static sort does.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PageDaemonStats:
    """Counters for one memory pool's reclaim activity."""

    activations: int = 0
    pages_reclaimed: int = 0
    file_pages_dropped: int = 0
    file_pages_written: int = 0
    anon_pages_swapped: int = 0
    meta_pages_dropped: int = 0

    def snapshot(self) -> "PageDaemonStats":
        return PageDaemonStats(
            self.activations,
            self.pages_reclaimed,
            self.file_pages_dropped,
            self.file_pages_written,
            self.anon_pages_swapped,
            self.meta_pages_dropped,
        )

    def delta(self, earlier: "PageDaemonStats") -> "PageDaemonStats":
        """Activity since ``earlier`` (a snapshot taken before a phase)."""
        return PageDaemonStats(
            self.activations - earlier.activations,
            self.pages_reclaimed - earlier.pages_reclaimed,
            self.file_pages_dropped - earlier.file_pages_dropped,
            self.file_pages_written - earlier.file_pages_written,
            self.anon_pages_swapped - earlier.anon_pages_swapped,
            self.meta_pages_dropped - earlier.meta_pages_dropped,
        )
