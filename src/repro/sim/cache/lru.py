"""Strict least-recently-used replacement.

Used directly by the ``netbsd15`` personality's fixed-size buffer cache
and as the reference policy in tests (its behaviour is the easiest to
reason about, so property tests compare other policies against it).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List

from repro.sim.cache.base import CachePolicy, PageEntry, PageKey


_ABSENT = object()


class LRUPolicy(CachePolicy):
    """OrderedDict-backed LRU; most recent at the back, victims from the front."""

    def __init__(self) -> None:
        super().__init__()
        self._pages: "OrderedDict[PageKey, bool]" = OrderedDict()

    def _reference(self, key: PageKey, dirty: bool) -> bool:
        pages = self._pages
        previous = pages.pop(key, _ABSENT)
        if previous is _ABSENT:
            return False
        pages[key] = previous or dirty
        return True

    def _insert(self, key: PageKey, dirty: bool) -> None:
        self._pages[key] = dirty

    def touch_cached_many(self, keys) -> bool:
        """Fused all-or-nothing replay: a clean LRU hit is move-to-end."""
        pages = self._pages
        for key in keys:
            if key not in pages:
                return False
        move = pages.move_to_end
        for key in keys:
            move(key)
        self.stats.hits += len(keys)
        return True

    def replay(self, token) -> None:
        """A clean LRU hit is move-to-end; per-key hashing is inherent,
        so the token stays the keys (the base ``replay_token``)."""
        move = self._pages.move_to_end
        for key in token:
            move(key)
        self.stats.hits += len(token)

    def reference_cells(self, cells, dirty: bool = False) -> None:
        """Batched LRU hit: cells are keys; one reorder pass per batch.

        ``_reference`` pops and re-appends with the or'd dirty bit; for
        a known-present key that is exactly ``move_to_end`` (plus a
        value store when dirtying), so the fused loop skips the pop.
        """
        pages = self._pages
        move = pages.move_to_end
        if dirty:
            for key in cells:
                pages[key] = True
                move(key)
        else:
            for key in cells:
                move(key)
        self.stats.hits += len(cells)

    def insert_absent_many(self, keys, dirty: bool):
        """Batched insert at the MRU end, in key order."""
        pages = self._pages
        for key in keys:
            pages[key] = dirty
        self.stats.misses += len(keys)
        return list(keys)

    def contains(self, key: PageKey) -> bool:
        return key in self._pages

    def is_dirty(self, key: PageKey) -> bool:
        return self._pages.get(key, False)

    def mark_clean(self, key: PageKey) -> None:
        if key in self._pages:
            self._pages[key] = False

    def remove(self, key: PageKey) -> bool:
        return self._pages.pop(key, None) is not None

    def pop_victims(self, count: int) -> List[PageEntry]:
        victims: List[PageEntry] = []
        while self._pages and len(victims) < count:
            key, dirty = self._pages.popitem(last=False)
            victims.append(PageEntry(key, dirty))
        self.stats.evictions += len(victims)
        return victims

    def demote(self, key: PageKey) -> None:
        if key in self._pages:
            self._pages.move_to_end(key, last=False)
            self.stats.demotions += 1

    def __len__(self) -> int:
        return len(self._pages)

    def keys(self) -> Iterator[PageKey]:
        return iter(self._pages.keys())
