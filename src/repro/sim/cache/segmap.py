"""Page-holding replacement — the ``solaris7`` personality.

The paper observed (§4.1.3) that the Solaris 7 file-cache manager "keeps
a single portion of the file in cache, so that repeated accesses to that
file hit in the cache", and that "once a file (or portion of a file) is
placed in the Solaris file cache, it is quite difficult to dislodge, even
under repeated scans of different files".

This policy reproduces exactly that observable behaviour without claiming
to be the real segmap implementation: victims are taken from the *most
recently first-cached* owner (file or process), and within an owner the
*most recently inserted* page goes first.  Consequences:

* a scan of a file larger than memory keeps its earliest-read prefix
  resident forever (warm re-scans are fast without any gray-box help);
* later files cannot dislodge earlier ones — their own fresh pages are
  chosen as victims instead.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

from repro.sim.cache.base import AnonKey, CachePolicy, FileKey, MetaKey, PageEntry, PageKey

Owner = Tuple


def _owner_of(key: PageKey) -> Owner:
    if isinstance(key, FileKey):
        return ("f", key.fs_id, key.ino)
    if isinstance(key, MetaKey):
        return ("m", key.fs_id)
    if isinstance(key, AnonKey):
        return ("a", key.pid)
    raise TypeError(f"unknown page key type: {key!r}")


class SegmapPolicy(CachePolicy):
    """Evict newest-owner-first, newest-insertion-first inside an owner."""

    def __init__(self) -> None:
        super().__init__()
        # owner -> insertion-ordered pages (value = dirty bit)
        self._owners: Dict[Owner, "OrderedDict[PageKey, bool]"] = {}
        self._first_seen: Dict[Owner, int] = {}
        # Max-heap (lazy) of (-first_seen, owner) for victim owner choice.
        self._heap: List[Tuple[int, Owner]] = []
        self._seq = 0
        self._count = 0

    def _pages_of(self, key: PageKey) -> "OrderedDict[PageKey, bool]":
        owner = _owner_of(key)
        pages = self._owners.get(owner)
        if pages is None:
            pages = self._owners[owner] = OrderedDict()
            self._seq += 1
            self._first_seen[owner] = self._seq
            heapq.heappush(self._heap, (-self._seq, owner))
        return pages

    def _reference(self, key: PageKey, dirty: bool) -> bool:
        pages = self._owners.get(_owner_of(key))
        if pages is None or key not in pages:
            return False
        if dirty:
            pages[key] = True
        return True

    def _insert(self, key: PageKey, dirty: bool) -> None:
        self._pages_of(key)[key] = dirty
        self._count += 1

    def touch_cached_many(self, keys) -> bool:
        """Fused all-or-nothing replay: a clean segmap hit moves nothing."""
        owners = self._owners
        for key in keys:
            pages = owners.get(_owner_of(key))
            if pages is None or key not in pages:
                return False
        self.stats.hits += len(keys)
        return True

    def reference_cells(self, cells, dirty: bool = False) -> None:
        """Batched segmap hit: cells are keys; a clean hit moves nothing."""
        if dirty:
            owners = self._owners
            for key in cells:
                owners[_owner_of(key)][key] = True
        self.stats.hits += len(cells)

    def insert_absent_many(self, keys, dirty: bool):
        """Batched insert in key order (owner rows created on demand)."""
        pages_of = self._pages_of
        for key in keys:
            pages_of(key)[key] = dirty
        self._count += len(keys)
        self.stats.misses += len(keys)
        return list(keys)

    def replay_token(self, keys):
        """A clean segmap hit mutates nothing, so the hit count is the
        entire replay state."""
        return len(keys)

    def replay(self, token) -> None:
        self.stats.hits += token

    def contains(self, key: PageKey) -> bool:
        pages = self._owners.get(_owner_of(key))
        return bool(pages) and key in pages

    def is_dirty(self, key: PageKey) -> bool:
        pages = self._owners.get(_owner_of(key))
        return bool(pages) and pages.get(key, False)

    def mark_clean(self, key: PageKey) -> None:
        pages = self._owners.get(_owner_of(key))
        if pages and key in pages:
            pages[key] = False

    def remove(self, key: PageKey) -> bool:
        owner = _owner_of(key)
        pages = self._owners.get(owner)
        if not pages or key not in pages:
            return False
        del pages[key]
        self._count -= 1
        if not pages:
            self._forget(owner)
        return True

    def _forget(self, owner: Owner) -> None:
        self._owners.pop(owner, None)
        self._first_seen.pop(owner, None)
        # Heap entry is removed lazily in pop_victims.

    def pop_victims(self, count: int) -> List[PageEntry]:
        victims: List[PageEntry] = []
        while self._count and len(victims) < count:
            neg_seen, owner = self._heap[0]
            pages = self._owners.get(owner)
            if pages is None or self._first_seen.get(owner) != -neg_seen:
                heapq.heappop(self._heap)  # stale entry
                continue
            key, dirty = pages.popitem(last=True)
            self._count -= 1
            victims.append(PageEntry(key, dirty))
            if not pages:
                heapq.heappop(self._heap)
                self._forget(owner)
        self.stats.evictions += len(victims)
        return victims

    def __len__(self) -> int:
        return self._count

    def keys(self) -> Iterator[PageKey]:
        for pages in self._owners.values():
            yield from pages.keys()
