"""Clock (second-chance) replacement — the ``linux22`` personality.

An approximation of LRU: pages sit on a circular list with a reference
bit; the hand sweeps, clearing bits, and evicts the first unreferenced
page it finds.  Because the hand moves in insertion order and scans clear
long runs of bits, eviction proceeds in *chunks* of pages inserted
together — the spatial-locality property Figure 1 of the paper measures
(the presence of one probed page predicts its neighbours).

Victim preference mirrors Linux 2.2: the kernel ran ``shrink_mmap``
(page/buffer-cache pages) to exhaustion before ever calling ``swap_out``
on process memory, so file pages are reclaimed first, absolutely, and
anonymous pages are touched only when no file page remains.  That
asymmetry is what lets gb-fastsort's granted buffers coexist with heavy
file streaming without paging (§4.3.3) and gives MAC its "available =
everything but competitors' anonymous memory" semantics.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List

from repro.sim.cache.base import AnonKey, CachePolicy, PageEntry, PageKey


class _Frame:
    __slots__ = ("referenced", "dirty")

    def __init__(self, dirty: bool) -> None:
        self.referenced = True
        self.dirty = dirty


class ClockPolicy(CachePolicy):
    """Second-chance over two insertion-ordered rings (file, then anon).

    Each ring is an OrderedDict walked from the front; giving a page a
    second chance moves it to the back (equivalent to the hand passing
    it and wrapping around), which keeps victim selection O(1) amortized.
    """

    def __init__(self) -> None:
        super().__init__()
        self._file_ring: "OrderedDict[PageKey, _Frame]" = OrderedDict()
        self._anon_ring: "OrderedDict[PageKey, _Frame]" = OrderedDict()

    def _ring_of(self, key: PageKey) -> "OrderedDict[PageKey, _Frame]":
        return self._anon_ring if isinstance(key, AnonKey) else self._file_ring

    def _reference(self, key: PageKey, dirty: bool) -> bool:
        frame = self._ring_of(key).get(key)
        if frame is None:
            return False
        frame.referenced = True
        frame.dirty = frame.dirty or dirty
        return True

    def _insert(self, key: PageKey, dirty: bool) -> None:
        self._ring_of(key)[key] = _Frame(dirty)

    def touch_cached_many(self, keys) -> bool:
        """Fused all-or-nothing replay: a clean clock hit sets the bit."""
        ring_of = self._ring_of
        frames = []
        for key in keys:
            frame = ring_of(key).get(key)
            if frame is None:
                return False
            frames.append(frame)
        for frame in frames:
            frame.referenced = True
        self.stats.hits += len(frames)
        return True

    def resident_cell(self, key: PageKey) -> _Frame:
        """A page's cell is its frame: identity-stable while resident."""
        return self._ring_of(key)[key]

    def reference_cells(self, cells, dirty: bool = False) -> None:
        """Batched clock hit: a reference-bit store per frame, no hashing."""
        if dirty:
            for frame in cells:
                frame.referenced = True
                frame.dirty = True
        else:
            for frame in cells:
                frame.referenced = True
        self.stats.hits += len(cells)

    def insert_absent_many(self, keys, dirty: bool):
        """Batched insert at the back of the ring; returns the new frames."""
        cells = []
        append = cells.append
        ring_of = self._ring_of
        for key in keys:
            frame = _Frame(dirty)
            ring_of(key)[key] = frame
            append(frame)
        self.stats.misses += len(keys)
        return cells

    def replay_token(self, keys):
        """The frame objects themselves: frames are identity-stable while
        resident (a second-chance rotation re-inserts the same frame),
        so while no page leaves the pool a replay needs no key hashing
        at all — just a reference-bit store per frame."""
        ring_of = self._ring_of
        return tuple(ring_of(key)[key] for key in keys)

    def replay(self, token) -> None:
        for frame in token:
            frame.referenced = True
        self.stats.hits += len(token)

    def contains(self, key: PageKey) -> bool:
        return key in self._ring_of(key)

    def is_dirty(self, key: PageKey) -> bool:
        frame = self._ring_of(key).get(key)
        return bool(frame and frame.dirty)

    def mark_clean(self, key: PageKey) -> None:
        frame = self._ring_of(key).get(key)
        if frame is not None:
            frame.dirty = False

    def remove(self, key: PageKey) -> bool:
        return self._ring_of(key).pop(key, None) is not None

    def demote(self, key: PageKey) -> None:
        ring = self._ring_of(key)
        frame = ring.get(key)
        if frame is not None:
            frame.referenced = False
            ring.move_to_end(key, last=False)
            self.stats.demotions += 1

    @staticmethod
    def _sweep(ring: "OrderedDict[PageKey, _Frame]", victims: List[PageEntry],
               count: int) -> None:
        # Each pass around the ring clears every reference bit, so the
        # loop terminates: by the second pass a page is unreferenced
        # unless re-touched, and pop_victims runs atomically.
        while ring and len(victims) < count:
            key, frame = ring.popitem(last=False)
            if frame.referenced:
                frame.referenced = False
                ring[key] = frame  # second chance: rotate to back
            else:
                victims.append(PageEntry(key, frame.dirty))

    def pop_victims(self, count: int) -> List[PageEntry]:
        victims: List[PageEntry] = []
        self._sweep(self._file_ring, victims, count)
        if len(victims) < count:
            self._sweep(self._anon_ring, victims, count)
        self.stats.evictions += len(victims)
        return victims

    def __len__(self) -> int:
        return len(self._file_ring) + len(self._anon_ring)

    def keys(self) -> Iterator[PageKey]:
        yield from self._file_ring.keys()
        yield from self._anon_ring.keys()
