"""Page-replacement policies for the simulated file cache / unified pool.

A policy is purely an *ordering structure*: it records touches and, when
the memory manager asks, nominates victims.  Capacity enforcement and the
eviction I/O live in :mod:`repro.sim.vm.physmem`, so every personality
shares the same reclaim machinery and differs only in victim choice.
"""

from repro.sim.cache.base import AnonKey, FileKey, MetaKey, PageEntry, CachePolicy
from repro.sim.cache.lru import LRUPolicy
from repro.sim.cache.clockpolicy import ClockPolicy
from repro.sim.cache.segmap import SegmapPolicy

POLICIES = {
    "lru": LRUPolicy,
    "clock": ClockPolicy,
    "segmap": SegmapPolicy,
}


def make_policy(name: str) -> CachePolicy:
    """Instantiate a registered replacement policy by name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown cache policy {name!r}; known: {sorted(POLICIES)}"
        ) from None


__all__ = [
    "AnonKey",
    "FileKey",
    "MetaKey",
    "PageEntry",
    "CachePolicy",
    "LRUPolicy",
    "ClockPolicy",
    "SegmapPolicy",
    "POLICIES",
    "make_policy",
]
