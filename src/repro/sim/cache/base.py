"""Common types for page-replacement policies.

Pages are identified by small tuples so they hash fast and print
readably:

* ``FileKey(fs_id, ino, page_index)``  — file data pages
* ``MetaKey(fs_id, block)``            — inode/metadata blocks
* ``AnonKey(pid, page_index)``         — anonymous (heap) pages
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, NamedTuple, Sequence, Union

from repro.obs.metrics import SnapshotStats


class FileKey(NamedTuple):
    fs_id: int
    ino: int
    index: int


class MetaKey(NamedTuple):
    fs_id: int
    block: int


class AnonKey(NamedTuple):
    pid: int
    index: int


PageKey = Union[FileKey, MetaKey, AnonKey]


class PageEntry(NamedTuple):
    """A victim nomination: which page, and whether it needs writeback."""

    key: PageKey
    dirty: bool


@dataclass
class CacheStats(SnapshotStats):
    """Access accounting shared by every replacement policy.

    ``hits``/``misses`` count :meth:`CachePolicy.touch` calls on
    present/absent pages, ``evictions`` counts victims surrendered by
    :meth:`CachePolicy.pop_victims`, and ``demotions`` counts
    drop-behind moves (:meth:`CachePolicy.demote` on a present page).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    demotions: int = 0


class CachePolicy(ABC):
    """Interface every replacement policy implements.

    Policies never perform I/O and never enforce capacity; they only
    maintain recency/reference state and nominate victims on demand.
    Every policy maintains a :class:`CacheStats`; hit/miss accounting is
    centralized in the base class's :meth:`touch` / :meth:`touch_cached`
    template methods, so subclasses implement only the two stat-free
    primitives :meth:`_reference` and :meth:`_insert` (plus eviction
    accounting inside ``pop_victims`` / ``demote``).
    """

    def __init__(self) -> None:
        self.stats = CacheStats()

    # Access template: one shared hit/miss bookkeeping path ------------
    def touch(self, key: PageKey, dirty: bool = False) -> None:
        """Record an access; inserts the page if it is not present."""
        if self._reference(key, dirty):
            self.stats.hits += 1
        else:
            self.stats.misses += 1
            self._insert(key, dirty)

    def touch_cached(self, key: PageKey, dirty: bool = False) -> bool:
        """Touch the page only if present; True on a hit.

        The batched-syscall fast path's primitive: one policy lookup,
        no insert, no miss accounting on the absent case (the caller
        falls back to the full :meth:`touch` path, which counts it).
        Shared here so every policy gets the fused form for free.
        """
        if self._reference(key, dirty):
            self.stats.hits += 1
            return True
        return False

    def touch_cached_many(self, keys: Sequence[PageKey]) -> bool:
        """All-or-nothing clean touch of a key sequence; True if all hit.

        The name-cache replay primitive: when *every* key is present,
        re-reference each one **in order** (recency/reference updates
        exactly as ``len(keys)`` individual clean touches would) and
        count that many hits.  If any key is absent, mutate nothing —
        no stats, no recency movement — and return False so the caller
        falls back to the slow walk, which performs and accounts every
        touch itself.  Membership is verified for the whole sequence
        before the first reference so a late miss cannot leave partial
        hit counts behind.  Subclasses override with fused forms.
        """
        contains = self.contains
        for key in keys:
            if not contains(key):
                return False
        reference = self._reference
        for key in keys:
            reference(key, False)
        self.stats.hits += len(keys)
        return True

    # Batched update primitives ----------------------------------------
    #
    # The vectorized fault/read paths verify residency for a whole page
    # run with one numpy membership test (see repro.sim.vm.residency)
    # and then need the policy effect of N individual touches without N
    # key constructions or dict probes.  The contract mirrors
    # ``replay_token``/``replay`` but is per-page: a *cell* is whatever
    # token lets this policy re-reference one resident page cheaply
    # (clock hands out its frame objects; key-addressed policies use the
    # key itself).  Cells are identity-stable while the page stays
    # resident and are invalidated by removal — the memory manager's
    # residency index drops them alongside its presence bits.
    def resident_cell(self, key: PageKey) -> Any:
        """The per-page replay cell for a *resident* key (default: the key)."""
        return key

    def reference_cells(self, cells: Sequence[Any], dirty: bool = False) -> None:
        """Re-reference resident pages by cell; ≡ ``len(cells)`` touch hits.

        Precondition: every cell belongs to a currently-resident page.
        Must leave recency/reference/dirty state and the hit count
        exactly as that many individual :meth:`touch` calls (all hits)
        in cell order would.
        """
        reference = self._reference
        for key in cells:
            reference(key, dirty)
        self.stats.hits += len(cells)

    def insert_absent_many(self, keys: Sequence[PageKey], dirty: bool) -> List[Any]:
        """Insert absent pages as one batch; ≡ ``len(keys)`` touch misses.

        Precondition: no key is present and the caller has verified
        capacity (no reclaim may be needed at any intermediate step).
        Returns the new pages' cells in key order so the caller can
        register them without ``len(keys)`` :meth:`resident_cell` calls.
        """
        insert = self._insert
        for key in keys:
            insert(key, dirty)
        self.stats.misses += len(keys)
        return list(keys)

    def replay_token(self, keys: Sequence[PageKey]) -> Any:
        """An opaque token for O(len)-cheap re-touches of resident keys.

        Contract: ``keys`` must all be resident *now*, and the token is
        valid only while **no page leaves this pool** (the memory
        manager's file-eviction epoch tracks exactly that).  While
        valid, :meth:`replay` must be observably identical to a
        successful :meth:`touch_cached_many` over the same keys —
        same recency/reference effects, same hit count.  Policies
        override to pre-resolve per-key lookups (e.g. clock caches the
        frame objects, so a replay is pure attribute stores).
        """
        return tuple(keys)

    def replay(self, token: Any) -> None:
        """Re-touch a :meth:`replay_token`'s keys without membership checks."""
        reference = self._reference
        for key in token:
            reference(key, False)
        self.stats.hits += len(token)

    @abstractmethod
    def _reference(self, key: PageKey, dirty: bool) -> bool:
        """Re-reference ``key`` iff present; True on a hit.

        Must update recency/reference state and the dirty bit exactly
        as a hit in the policy's replacement discipline demands, and
        must NOT touch :attr:`stats` — the template methods do that.
        """

    @abstractmethod
    def _insert(self, key: PageKey, dirty: bool) -> None:
        """Insert an absent page as the most recently used (no stats)."""

    @abstractmethod
    def contains(self, key: PageKey) -> bool:
        """True if the page is currently cached."""

    @abstractmethod
    def is_dirty(self, key: PageKey) -> bool:
        """True if the page is cached and has unwritten modifications."""

    @abstractmethod
    def mark_clean(self, key: PageKey) -> None:
        """Clear the dirty bit after a writeback (no-op if absent)."""

    @abstractmethod
    def remove(self, key: PageKey) -> bool:
        """Drop the page (truncate/unlink/free); True if it was present."""

    @abstractmethod
    def pop_victims(self, count: int) -> List[PageEntry]:
        """Remove and return up to ``count`` victims, best-first."""

    def demote(self, key: PageKey) -> None:
        """Make the page the next eviction candidate (drop-behind).

        Called after a written-back page's data is safely on disk so
        streaming writers recycle their own pages.  Policies without a
        meaningful "front" may ignore it; the default is a no-op.
        """

    @abstractmethod
    def __len__(self) -> int:
        """Number of cached pages."""

    @abstractmethod
    def keys(self) -> Iterator[PageKey]:
        """Iterate over cached page keys (oracle/testing use)."""

    # Convenience shared by all policies -------------------------------
    def remove_many(self, keys: Iterable[PageKey]) -> int:
        removed = 0
        for key in keys:
            if self.remove(key):
                removed += 1
        return removed

    def dirty_keys(self) -> List[PageKey]:
        return [k for k in self.keys() if self.is_dirty(k)]
