"""Machine and platform configuration.

:class:`MachineConfig` describes the hardware of the simulated testbed;
the defaults model the paper's machine (dual Pentium-III, 896 MB of
memory, five IBM 9LZX disks).  :class:`PlatformSpec` describes one of the
three operating-system *personalities* the paper evaluates:

* ``linux22``  — Linux 2.2.17: unified page cache over nearly all of
  physical memory, clock (second-chance) replacement shared between file
  pages and anonymous memory.
* ``netbsd15`` — NetBSD 1.5: a separate, fixed-size (64 MB) buffer cache
  with LRU replacement; anonymous memory managed independently.
* ``solaris7`` — Solaris 7: a large unified cache whose manager holds on
  to the pages of the first file cached "too persistently" (the paper's
  observed behaviour, §4.1.3).

The personalities differ only in data; the kernel code is shared, which is
exactly the property the paper's ICLs exploit — high-level algorithmic
knowledge plus observations, rather than per-OS detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro.sim.clock import MICROS, MILLIS, NANOS

if TYPE_CHECKING:
    from repro.sim.cache.base import CachePolicy

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class DiskSpec:
    """Geometry and timing of one disk (defaults approximate an IBM 9LZX).

    The service-time model is ``seek(distance) + rotation + transfer``
    where seek follows the usual ``a + b*sqrt(d)`` curve for short
    distances blending into a linear regime for long ones, and rotation is
    computed from the head's angular position, which the model tracks
    continuously.  Sequential transfers therefore pay neither seek nor
    rotational delay, giving near-peak bandwidth — the property FCCD's
    access-unit sizing and FLDC's layout sorting both depend on.
    """

    sector_bytes: int = 512
    sectors_per_track: int = 240
    heads: int = 10
    cylinders: int = 7_500
    rpm: int = 10_000
    # Seek curve: single-track, average and full-stroke targets (ns).
    single_track_seek_ns: int = 800 * MICROS
    full_stroke_seek_ns: int = 10 * MILLIS
    head_switch_ns: int = 500 * MICROS
    # Fixed per-request controller/command overhead.
    command_overhead_ns: int = 200 * MICROS

    @property
    def track_bytes(self) -> int:
        return self.sector_bytes * self.sectors_per_track

    @property
    def cylinder_bytes(self) -> int:
        return self.track_bytes * self.heads

    @property
    def capacity_bytes(self) -> int:
        return self.cylinder_bytes * self.cylinders

    @property
    def rotation_ns(self) -> int:
        """One full revolution, in nanoseconds."""
        return int(round(60.0 * 1_000_000_000 / self.rpm))


@dataclass(frozen=True)
class MachineConfig:
    """Hardware parameters of the simulated machine.

    Time constants are set to 2001-era hardware so absolute results land
    in the same regime as the paper (e.g. a cold 1 GB scan takes tens of
    seconds); only the *shapes* are claimed by the reproduction.
    """

    page_size: int = 4 * KIB
    memory_bytes: int = 896 * MIB
    # Memory the kernel itself consumes; the paper's MAC experiments find
    # 830 MB available on the 896 MB machine, so the default reserve is
    # the difference.
    kernel_reserved_bytes: int = 66 * MIB
    cpus: int = 2
    data_disks: int = 4
    swap_disks: int = 1
    disk: DiskSpec = field(default_factory=DiskSpec)

    # --- CPU-side time constants -------------------------------------
    syscall_overhead_ns: int = 1 * MICROS
    # Kernel-to-user copy bandwidth (≈400 MB/s on a P-III).
    memcopy_ns_per_byte: float = 2.5
    # Writing one resident byte/word from user code (TLB hit, cache miss).
    mem_touch_ns: int = 150 * NANOS
    # Allocating and zeroing a fresh page on first touch.
    page_zero_ns: int = 3 * MICROS
    # Minor bookkeeping on a page fault that needs no I/O.
    fault_overhead_ns: int = 2 * MICROS
    # Cost of reading a timestamp (the toolbox's rdtsc-equivalent).
    gettime_overhead_ns: int = 40 * NANOS

    # --- Write-buffering (bdflush) tuning ------------------------------
    # Dirty file pages may occupy at most this fraction of available
    # memory; a writer crossing it synchronously flushes dirty pages,
    # which are then *demoted* to prime eviction candidates.  This is
    # the 2.2-era split between the read cache and the (much smaller)
    # self-recycling write buffer: a process streaming writes recycles
    # its own pages instead of evicting other files' read cache.
    dirty_limit_frac: float = 0.10
    dirty_flush_target_frac: float = 0.05

    # --- Page-daemon tuning ------------------------------------------
    # Pages reclaimed (and clustered into one writeback I/O) each time a
    # fault finds the pool full.  Small batches make memory pressure
    # visible as *several slow data points in near succession* — the
    # paper's paging signal (§4.3.1) — rather than one giant stall.
    reclaim_batch_pages: int = 16

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError("page_size must be a positive power of two")
        if self.memory_bytes <= self.kernel_reserved_bytes:
            raise ValueError("machine must have memory beyond the kernel reserve")
        if self.data_disks < 1:
            raise ValueError("need at least one data disk")

    @property
    def available_bytes(self) -> int:
        """Physical memory usable by processes and the file cache."""
        return self.memory_bytes - self.kernel_reserved_bytes

    @property
    def available_pages(self) -> int:
        return self.available_bytes // self.page_size

    def page_copy_ns(self, nbytes: int) -> int:
        """Kernel-to-user copy time for ``nbytes``."""
        return int(round(self.memcopy_ns_per_byte * nbytes))

    def scaled(self, **overrides) -> "MachineConfig":
        """Return a copy with the given fields replaced.

        Benchmarks use this to select 64 KiB pages (fewer simulated page
        objects at paper-scale file sizes) without touching anything else.
        """
        return replace(self, **overrides)


@dataclass(frozen=True)
class PoolPlan:
    """The page-pool arrangement a platform hands the memory manager.

    ``unified`` means ``file_pool is anon_pool`` — one replacement pool
    shared by file, metadata, and anonymous pages, with both capacities
    equal to all available memory.
    """

    file_pool: "CachePolicy"
    file_capacity_pages: int
    anon_pool: "CachePolicy"
    anon_capacity_pages: int
    unified: bool


@dataclass(frozen=True)
class PlatformSpec:
    """An operating-system personality layered on the shared kernel code.

    Personalities are *data plus hooks*: policy names, sizing constants,
    and — where data alone cannot express a behaviour — factory hooks
    (:meth:`make_pools`, :attr:`page_cache_factory`,
    :attr:`syscall_overrides`) that the kernel resolves once at
    construction.  Shared kernel code never branches on the platform
    name, which is exactly the property the paper's ICLs exploit: the
    OSes differ in policy, not in the syscall surface.
    """

    name: str
    description: str
    # Name of the file-cache policy registered in repro.sim.cache.
    cache_policy: str
    # If set, the file cache is a separate fixed-size pool of this many
    # bytes (NetBSD 1.5 style) instead of sharing all available memory.
    fixed_file_cache_bytes: Optional[int] = None
    # Whether anonymous memory and file pages compete in one pool.
    unified_vm: bool = True
    # Blocks the allocator skips between allocation requests.  The paper
    # hypothesizes (§4.2.3) that Solaris "does not pack the data blocks
    # of small files together as tightly as the others, and thus spends
    # more time in rotation" — a gap of one block reproduces exactly
    # that observable.
    ffs_alloc_gap: int = 0
    # Replacement policy for the anonymous pool when the platform splits
    # pools (ignored in unified mode, where one policy serves both).
    anon_cache_policy: str = "lru"
    # Construction hooks, resolved once when the kernel is assembled.
    # ``page_cache_factory`` (same signature as PageCacheManager) lets a
    # platform substitute its own data-page I/O manager; ``None`` means
    # the stock one.  ``syscall_overrides`` is a tuple of
    # ``(syscall_name, factory)`` pairs; each ``factory(kernel)`` returns
    # the replacement handler, installed via ``SyscallTable.override``.
    page_cache_factory: Optional[Callable[..., Any]] = None
    syscall_overrides: Tuple[Tuple[str, Callable[[Any], Callable[..., Any]]], ...] = ()

    def make_pools(self, config: MachineConfig) -> PoolPlan:
        """Build this platform's page pools for ``config``'s memory.

        Split platforms (``fixed_file_cache_bytes`` set) get a dedicated
        file/metadata pool of that size plus an anonymous pool (policy
        :attr:`anon_cache_policy`) over the remainder; unified platforms
        get one pool, under :attr:`cache_policy`, spanning everything.
        """
        # Imported here: config is the bottom layer, the cache package
        # sits above it, and only this hook needs to reach upward.
        from repro.sim.cache import make_policy

        total = config.available_pages
        if self.fixed_file_cache_bytes is not None:
            file_pages = self.fixed_file_cache_bytes // config.page_size
            if not 0 < file_pages < total:
                raise ValueError("fixed file cache must fit inside available memory")
            return PoolPlan(
                file_pool=make_policy(self.cache_policy),
                file_capacity_pages=file_pages,
                anon_pool=make_policy(self.anon_cache_policy),
                anon_capacity_pages=total - file_pages,
                unified=False,
            )
        pool = make_policy(self.cache_policy)
        return PoolPlan(
            file_pool=pool,
            file_capacity_pages=total,
            anon_pool=pool,
            anon_capacity_pages=total,
            unified=True,
        )


linux22 = PlatformSpec(
    name="linux22",
    description="Linux 2.2.17: unified page cache, clock replacement",
    cache_policy="clock",
    unified_vm=True,
)

netbsd15 = PlatformSpec(
    name="netbsd15",
    description="NetBSD 1.5: fixed 64 MB buffer cache, LRU replacement",
    cache_policy="lru",
    fixed_file_cache_bytes=64 * MIB,
    unified_vm=False,
)

solaris7 = PlatformSpec(
    name="solaris7",
    description="Solaris 7: unified cache that holds early files persistently",
    cache_policy="segmap",
    unified_vm=True,
    ffs_alloc_gap=4,
)

PLATFORMS: Dict[str, PlatformSpec] = {
    spec.name: spec for spec in (linux22, netbsd15, solaris7)
}
