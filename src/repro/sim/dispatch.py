"""Syscall dispatch: the platform-pluggable handler registry.

A :class:`SyscallTable` maps syscall names to handlers.  Handlers are
callables of the shape ``handler(process, *args)`` returning either a
``(value, simulated_duration_ns)`` pair or the :data:`BLOCK` sentinel
(park the caller until woken; the kernel re-executes the syscall on
wake-up).  Raising a :class:`~repro.sim.errors.SimOSError` delivers the
failure into the process after the base syscall overhead.

At kernel construction each subsystem registers its handlers
(``subsystem.register_syscalls(table)``), then the platform personality
applies its :attr:`~repro.sim.config.PlatformSpec.syscall_overrides` —
so ``linux22`` / ``netbsd15`` / ``solaris7`` (and any future platform)
differ by *which handlers they install*, never by conditionals inside
shared kernel code.  Vectored calls and experimental syscalls register
the same way instead of growing a central if/elif chain.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional

#: A syscall handler: ``handler(process, *args)`` →
#: ``(value, duration_ns)`` or :data:`BLOCK`.
Handler = Callable[..., Any]


class _Block:
    """Sentinel a handler returns to park the caller until woken."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "BLOCK"


BLOCK = _Block()


class SyscallTable:
    """Name → handler registry with explicit override semantics.

    ``register`` claims a fresh name (duplicate registration is a
    programming error — two subsystems fighting over one syscall);
    ``override`` replaces an existing handler (the platform-
    personality hook) and returns the previous one so wrappers can
    delegate to the stock behaviour.
    """

    __slots__ = ("_handlers",)

    def __init__(self) -> None:
        self._handlers: Dict[str, Handler] = {}

    def register(self, name: str, handler: Handler) -> None:
        if name in self._handlers:
            raise ValueError(
                f"syscall {name!r} already registered; use override() to replace it"
            )
        self._handlers[name] = handler

    def override(self, name: str, handler: Handler) -> Handler:
        """Replace an existing handler; returns the one displaced."""
        previous = self._handlers.get(name)
        if previous is None:
            raise ValueError(
                f"cannot override unregistered syscall {name!r}; "
                f"known: {sorted(self._handlers)}"
            )
        self._handlers[name] = handler
        return previous

    def get(self, name: str) -> Optional[Handler]:
        return self._handlers.get(name)

    def mapping(self) -> Dict[str, Handler]:
        """The live name → handler dict (the dispatch loop's lookup).

        Shared, not copied: the kernel's ``_execute`` does one dict
        ``get`` per syscall against exactly this object.
        """
        return self._handlers

    def names(self) -> Iterator[str]:
        return iter(sorted(self._handlers))

    def __contains__(self, name: str) -> bool:
        return name in self._handlers

    def __len__(self) -> int:
        return len(self._handlers)
