"""Simulated time.

All simulated durations and timestamps are integer nanoseconds.  Using
integers keeps the simulation exactly deterministic (no floating-point
drift across platforms), which the reproduction relies on: every figure
in EXPERIMENTS.md is regenerated bit-for-bit from a seed.
"""

from __future__ import annotations

NANOS = 1
MICROS = 1_000
MILLIS = 1_000_000
SECONDS = 1_000_000_000


def ns_to_seconds(ns: int) -> float:
    """Convert integer nanoseconds to float seconds (for reporting only)."""
    return ns / SECONDS


def seconds_to_ns(seconds: float) -> int:
    """Convert float seconds to integer nanoseconds, rounding to nearest."""
    return int(round(seconds * SECONDS))


class Clock:
    """A monotonically non-decreasing simulated clock.

    The kernel owns one clock.  Components that model busy resources
    (disks, CPUs) keep their own ``busy_until`` horizons and reconcile
    against this clock.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before time zero")
        self._now = start

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    def advance(self, delta: int) -> int:
        """Move the clock forward by ``delta`` nanoseconds and return now."""
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: int) -> int:
        """Move the clock forward to ``timestamp`` if it is in the future."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def __repr__(self) -> str:
        return f"Clock(now={self._now}ns)"
