"""Simulated time.

All simulated durations and timestamps are integer nanoseconds.  Using
integers keeps the simulation exactly deterministic (no floating-point
drift across platforms), which the reproduction relies on: every figure
in EXPERIMENTS.md is regenerated bit-for-bit from a seed.
"""

from __future__ import annotations

NANOS = 1
MICROS = 1_000
MILLIS = 1_000_000
SECONDS = 1_000_000_000


def ns_to_seconds(ns: int) -> float:
    """Convert integer nanoseconds to float seconds (for reporting only)."""
    return ns / SECONDS


def seconds_to_ns(seconds: float) -> int:
    """Convert float seconds to integer nanoseconds, rounding to nearest."""
    return int(round(seconds * SECONDS))


class Clock:
    """A monotonically non-decreasing simulated clock.

    The kernel owns one clock.  Components that model busy resources
    (disks, CPUs) keep their own ``busy_until`` horizons and reconcile
    against this clock.

    ``now`` is a plain attribute, not a property: every syscall handler
    reads it at least once (often several times), and the descriptor
    call showed up in the dispatch-loop profile.  It must only be
    written through :meth:`advance` / :meth:`advance_to`, which keep it
    monotone.
    """

    __slots__ = ("now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before time zero")
        #: Current simulated time in nanoseconds (read-only by convention).
        self.now = start

    def advance(self, delta: int) -> int:
        """Move the clock forward by ``delta`` nanoseconds and return now."""
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta}")
        self.now += delta
        return self.now

    def advance_to(self, timestamp: int) -> int:
        """Move the clock forward to ``timestamp`` if it is in the future."""
        if timestamp > self.now:
            self.now = timestamp
        return self.now

    def __repr__(self) -> str:
        return f"Clock(now={self.now}ns)"
