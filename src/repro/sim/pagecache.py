"""The page-cache manager: data-page movement between memory and disk.

This layer sits between the VFS/file-I/O syscall handlers above it and
the :class:`~repro.sim.vm.physmem.MemoryManager` + disks below it.  The
memory manager decides *which* pages live and die; this manager turns
those decisions into simulated I/O time:

* **reads** cluster contiguous cache misses whose disk blocks are also
  contiguous into single disk requests (:meth:`read_file_pages`);
* **writes** dirty pages through the cache, paying read-modify-write
  for partial pages (:meth:`write_file_pages`), and bdflush-style
  throttling charges streaming writers for flushing their own backlog
  (:meth:`throttle_dirty`);
* **evictions** nominated by the memory manager become clustered
  writebacks — anonymous victims to their swap slots, dirty file/meta
  pages to their home blocks (:meth:`dispose_victims`).

Every method threads explicit simulated time ``t`` and returns the new
time; nothing here reads or advances the kernel clock.  Platform
personalities install this manager (or a subclass) via
:attr:`~repro.sim.config.PlatformSpec.page_cache_factory`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

import numpy as np

from repro.sim.cache.base import AnonKey, FileKey, MetaKey, PageEntry
from repro.sim.config import MachineConfig
from repro.sim.disk import Disk
from repro.sim.fs.ffs import FFS
from repro.sim.fs.inode import Inode
from repro.sim.vm.physmem import MemoryManager


def runs(sorted_values: List[int]) -> Iterable[Tuple[int, int]]:
    """Collapse a sorted int list into (start, length) contiguous runs."""
    start = None
    length = 0
    for value in sorted_values:
        if start is not None and value == start + length:
            length += 1
        elif start is not None and value == start + length - 1:
            continue  # duplicate
        else:
            if start is not None:
                yield start, length
            start = value
            length = 1
    if start is not None:
        yield start, length


#: Below this many blocks the Python ``sort`` + ``runs`` pass beats
#: numpy's fixed per-op overhead; above it ``np.unique`` + one diff
#: split wins and the margin grows with flush size.  Both compute the
#: same (start, length) runs, so the crossover is host-time tuning only.
_NUMPY_RUNS_MIN = 64


def runs_array(blocks: List[int]) -> List[Tuple[int, int]]:
    """``runs(sorted(set(blocks)))`` computed vectorially.

    One ``np.unique`` (sort + dedup) and one ``diff`` split replace the
    per-element Python loop; identical output to :func:`runs` over the
    sorted, duplicate-skipping input by construction.
    """
    uniq = np.unique(np.asarray(blocks, dtype=np.int64))
    splits = np.flatnonzero(np.diff(uniq) > 1) + 1
    starts = np.concatenate(([0], splits))
    ends = np.concatenate((splits, [uniq.shape[0]]))
    run_starts = uniq[starts].tolist()
    lengths = (ends - starts).tolist()
    return list(zip(run_starts, lengths))


class PageCacheManager:
    """Owns cached data-page I/O: fills, writebacks, and throttling.

    ``fs_by_id`` and ``disk_of_fs`` are live mappings shared with the
    kernel's mount state, so filesystems mounted after construction are
    visible here without re-wiring.
    """

    def __init__(
        self,
        config: MachineConfig,
        mm: MemoryManager,
        swap_disk: Disk,
        fs_by_id: Mapping[int, FFS],
        disk_of_fs: Mapping[int, Disk],
    ) -> None:
        self.config = config
        self.mm = mm
        self.swap_disk = swap_disk
        self._fs_by_id = fs_by_id
        self._disk_of_fs = disk_of_fs
        #: Gate for the vectorized run computation in
        #: :meth:`write_block_runs`; ``Kernel(numpy_paths=False)`` turns
        #: it off for the scalar-vs-vector differential fuzzer.
        self.numpy_paths: bool = True

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read_file_pages(
        self, fs: FFS, disk: Disk, inode: Inode, indexes: Iterable[int], t: int
    ) -> Tuple[int, int]:
        """Bring the given pages into cache; returns (new_time, hit_count).

        Contiguous cache misses whose disk blocks are also contiguous are
        clustered into single disk requests.
        """
        mm = self.mm
        hits = 0
        run_start_block = -1
        run_len = 0

        def flush_run(now: int) -> int:
            nonlocal run_len, run_start_block
            if run_len == 0:
                return now
            _s, end = disk.access(run_start_block, run_len, now, self.config.page_size)
            run_len = 0
            return end

        pending_victims: List[PageEntry] = []
        for index in indexes:
            key = FileKey(fs.fs_id, inode.ino, index)
            if mm.file_cached(key):
                mm.touch_file(key)
                hits += 1
                continue
            block = inode.block_of_page(index)
            if run_len and block == run_start_block + run_len:
                run_len += 1
            else:
                t = flush_run(t)
                run_start_block = block
                run_len = 1
            pending_victims.extend(mm.touch_file(key))
        t = flush_run(t)
        t = self.dispose_victims(pending_victims, t)
        return t, hits

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def write_file_pages(
        self, fs: FFS, disk: Disk, inode: Inode, offset: int, nbytes: int, t: int
    ) -> int:
        """Dirty the pages covering [offset, offset+nbytes) through the cache."""
        page = self.config.page_size
        first = offset // page
        last = (offset + nbytes - 1) // page
        old_pages = len(inode.blocks)
        fs.grow_to_size(inode, offset + nbytes)
        fs.rewrite_pages(inode, first, min(last, old_pages - 1))
        victims: List[PageEntry] = []
        for index in range(first, last + 1):
            key = FileKey(fs.fs_id, inode.ino, index)
            covers_whole = offset <= index * page and (index + 1) * page <= offset + nbytes
            needs_rmw = (
                not covers_whole
                and index < old_pages
                and not self.mm.file_cached(key)
            )
            if needs_rmw:
                t, _ = self.read_file_pages(fs, disk, inode, [index], t)
            victims.extend(self.mm.touch_file(key, dirty=True))
        return self.dispose_victims(victims, t)

    # ------------------------------------------------------------------
    # Eviction I/O and writeback
    # ------------------------------------------------------------------
    def dispose_victims(self, victims: List[PageEntry], t: int) -> int:
        """Perform the page daemon's writebacks; returns the new time.

        Anonymous victims already have swap slots assigned; contiguous
        slots become one clustered swap write.  Dirty file/meta pages are
        written back to their home blocks, clustered where contiguous.
        """
        if not victims:
            return t
        swap_slots: List[int] = []
        file_writes: Dict[int, List[int]] = {}
        for entry in victims:
            key = entry.key
            if isinstance(key, AnonKey):
                slot = self.mm.swap.slot_of(key)
                if slot is not None:
                    swap_slots.append(slot)
            elif isinstance(key, FileKey) and entry.dirty:
                fs = self._fs_by_id.get(key.fs_id)
                if fs is None:
                    continue
                inode = fs.inodes.get(key.ino)
                if inode is None or key.index >= len(inode.blocks):
                    continue
                file_writes.setdefault(key.fs_id, []).append(inode.blocks[key.index])
            elif isinstance(key, MetaKey) and entry.dirty:
                file_writes.setdefault(key.fs_id, []).append(key.block)
        t = self.write_block_runs(self.swap_disk, swap_slots, t)
        for fs_id, blocks in file_writes.items():
            t = self.write_block_runs(self._disk_of_fs[fs_id], blocks, t)
        return t

    def write_block_runs(self, disk: Disk, blocks: List[int], t: int) -> int:
        """Write ``blocks`` back as clustered runs; returns the new time.

        Sorts the list in place exactly once per flush (building fresh
        ``sorted()`` copies at every call site showed up in the
        writeback/swap profiles).
        """
        if not blocks:
            return t
        page = self.config.page_size
        if self.numpy_paths and len(blocks) >= _NUMPY_RUNS_MIN:
            # Same runs, one vectorized sort/dedup/split, one batched
            # disk call servicing the whole storm.
            return disk.access_runs(runs_array(blocks), t, page, write=True)
        blocks.sort()
        for start, length in runs(blocks):
            _s, t = disk.access(start, length, t, page, write=True)
        return t

    def throttle_dirty(self, t: int) -> int:
        """bdflush-style write throttling (charged to the writer).

        When dirty file pages exceed their share of memory, flush the
        oldest down to the target and demote them so streaming writers
        recycle their own pages instead of evicting read caches.
        """
        cfg = self.config
        mm = self.mm
        capacity = mm.file_capacity_pages
        limit = int(capacity * cfg.dirty_limit_frac)
        if mm.dirty_file_pages <= limit:
            return t
        target = int(capacity * cfg.dirty_flush_target_frac)
        need = mm.dirty_file_pages - target
        keys = mm.oldest_dirty_file_keys(need)
        writes: Dict[int, List[int]] = {}
        for key in keys:
            if isinstance(key, FileKey):
                fs = self._fs_by_id.get(key.fs_id)
                inode = fs.inodes.get(key.ino) if fs else None
                if inode is None or key.index >= len(inode.blocks):
                    mm.writeback_complete(key)
                    continue
                writes.setdefault(key.fs_id, []).append(inode.blocks[key.index])
            elif isinstance(key, MetaKey):
                writes.setdefault(key.fs_id, []).append(key.block)
            mm.writeback_complete(key)
        for fs_id, blocks in writes.items():
            t = self.write_block_runs(self._disk_of_fs[fs_id], blocks, t)
        return t
