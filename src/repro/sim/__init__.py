"""Simulated operating-system substrate.

This subpackage provides everything the paper's physical testbed provided:
a machine (CPU, memory, disks), an operating system (file cache, virtual
memory, FFS-like filesystems, a process scheduler), and a syscall
interface whose results carry *simulated elapsed time* — the covert
channel that the gray-box layer in :mod:`repro.icl` exploits.

The central rule of this reproduction: code in :mod:`repro.icl`,
:mod:`repro.toolbox`, and :mod:`repro.apps` interacts with the kernel
*only* through :mod:`repro.sim.syscalls`.  Ground-truth inspection (which
pages are really cached, where blocks really live) is available through
:class:`repro.sim.kernel.Oracle` and is used only by tests and by the
experiment harness to validate inferences.
"""

from repro.sim.clock import MICROS, MILLIS, NANOS, SECONDS, Clock
from repro.sim.config import (
    PLATFORMS,
    MachineConfig,
    PlatformSpec,
    linux22,
    netbsd15,
    solaris7,
)
from repro.sim.errors import (
    SimOSError,
    BadFileDescriptor,
    FileExists,
    FileNotFound,
    Interrupted,
    InvalidArgument,
    IsADirectory,
    NoSpace,
    NotADirectory,
    OutOfMemory,
    TransientError,
    TryAgain,
    is_transient,
)
from repro.sim.inject import (
    NOISE_DOMAINS,
    FaultInjector,
    InjectionConfig,
    InterferenceSpec,
    LatencyNoise,
    TransientFaults,
    noise_profile,
)
from repro.sim.kernel import Kernel, Oracle
from repro.sim import syscalls

__all__ = [
    "Clock",
    "Kernel",
    "Oracle",
    "MachineConfig",
    "PlatformSpec",
    "PLATFORMS",
    "linux22",
    "netbsd15",
    "solaris7",
    "syscalls",
    "SimOSError",
    "BadFileDescriptor",
    "FileExists",
    "FileNotFound",
    "Interrupted",
    "InvalidArgument",
    "IsADirectory",
    "NoSpace",
    "NotADirectory",
    "OutOfMemory",
    "TransientError",
    "TryAgain",
    "is_transient",
    "FaultInjector",
    "InjectionConfig",
    "InterferenceSpec",
    "LatencyNoise",
    "TransientFaults",
    "noise_profile",
    "NOISE_DOMAINS",
    "NANOS",
    "MICROS",
    "MILLIS",
    "SECONDS",
]
