"""Parallel trial runner with deterministic seeding and an on-disk cache.

Every figure and ablation driver decomposes into *trials*: pure,
self-contained functions that build their own :class:`~repro.sim.Kernel`,
run a workload, and return plain JSON-serialisable data.  Because each
trial owns its kernel, trials are embarrassingly parallel; this module
fans them out over a :class:`concurrent.futures.ProcessPoolExecutor`
while keeping three guarantees the reproduction depends on:

* **Determinism** — a trial's result is a pure function of
  ``(trial function, params, seed)``.  Seeds are either supplied
  explicitly by the driver or derived from ``(experiment_id,
  trial_index)`` via :func:`derive_seed`; results are assembled in spec
  order, never completion order, so ``jobs=1`` and ``jobs=N`` produce
  bit-identical rows.
* **Caching** — each trial's result can be persisted to disk, keyed by a
  hash of the experiment id, the trial function (module path plus source
  fingerprint), its canonicalised params (including the
  :class:`MachineConfig` and platform name), and the seed.  Re-running an
  unchanged configuration is instant; changing any input re-simulates.
* **Telemetry** — per-trial wall times and hit/miss counts accumulate in
  session stats that the CLI, the report generator, and the benchmark
  suite surface.

Trial functions must be module-level (picklable by reference) and accept
``seed`` as their first keyword argument.  Their return values are
round-tripped through JSON before use, so fresh and cached runs are
structurally identical (tuples become lists, dict keys become strings).
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.obs import capture_metrics
from repro.obs.metrics import merge_samples

DEFAULT_CACHE_DIR = Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))


# ======================================================================
# Runner configuration
# ======================================================================
@dataclass
class RunnerConfig:
    """Process-wide execution policy for :func:`run_trials`.

    ``jobs=1`` runs trials inline in spec order (the sequential
    reference path); ``jobs>1`` fans uncached trials out over a process
    pool.  The cache is off by default so unit tests always exercise the
    simulator; the CLI and the benchmark suite opt in explicitly.
    """

    jobs: int = 1
    use_cache: bool = False
    cache_dir: Path = DEFAULT_CACHE_DIR
    progress: Optional[Callable[["TrialOutcome"], None]] = None


_active = RunnerConfig()


def configure(
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[os.PathLike] = None,
    progress: Optional[Callable[["TrialOutcome"], None]] = None,
) -> RunnerConfig:
    """Update the active runner configuration; returns it."""
    if jobs is not None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        _active.jobs = jobs
    if use_cache is not None:
        _active.use_cache = use_cache
    if cache_dir is not None:
        _active.cache_dir = Path(cache_dir)
    if progress is not None:
        _active.progress = progress
    return _active


def configured() -> RunnerConfig:
    return _active


@contextmanager
def configuration(**overrides: Any) -> Iterator[RunnerConfig]:
    """Temporarily override the active configuration (tests, benchmarks)."""
    saved = dataclasses.replace(_active)
    try:
        configure(**overrides)
        yield _active
    finally:
        _active.jobs = saved.jobs
        _active.use_cache = saved.use_cache
        _active.cache_dir = saved.cache_dir
        _active.progress = saved.progress


# ======================================================================
# Deterministic seeding
# ======================================================================
def derive_seed(experiment_id: str, trial_index: int, base_seed: int = 0) -> int:
    """A stable 63-bit seed from ``(experiment_id, trial_index)``.

    Hash-derived so that neighbouring trial indexes get uncorrelated
    random streams and the mapping survives refactors that reorder
    drivers.
    """
    digest = hashlib.sha256(
        f"{experiment_id}:{trial_index}:{base_seed}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


# ======================================================================
# Trial specification and outcomes
# ======================================================================
@dataclass(frozen=True)
class TrialSpec:
    """One independent unit of simulation.

    ``fn`` must be a module-level function called as
    ``fn(seed=seed, **params)``; ``params`` must be picklable and
    JSON-canonicalisable (dataclasses such as ``MachineConfig`` are
    handled).  When ``seed`` is ``None`` the runner derives one from
    ``(experiment_id, trial_index)``.
    """

    experiment_id: str
    trial_index: int
    fn: Callable[..., Any]
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None

    def resolved_seed(self) -> int:
        if self.seed is not None:
            return self.seed
        return derive_seed(self.experiment_id, self.trial_index)


@dataclass
class TrialOutcome:
    """What happened to one trial: its value, timing, and cache status.

    ``metrics`` holds the observability samples captured while the trial
    ran (plain dicts from :meth:`MetricsRegistry.collect`, so they pickle
    across the process pool and round-trip through the cache).
    """

    experiment_id: str
    trial_index: int
    value: Any
    elapsed_s: float
    cached: bool
    metrics: List[Dict[str, Any]] = field(default_factory=list)


@dataclass
class RunStats:
    """Telemetry for one :func:`run_trials` call."""

    experiment_id: str
    trials: int = 0
    cached: int = 0
    simulated: int = 0
    wall_s: float = 0.0
    trial_s: List[float] = field(default_factory=list)
    metric_samples: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def sim_s(self) -> float:
        """Total simulated-trial CPU seconds (sum over workers)."""
        return sum(self.trial_s)

    def summary(self) -> str:
        return (
            f"{self.experiment_id}: {self.trials} trial(s), "
            f"{self.cached} cached, {self.simulated} simulated, "
            f"{self.wall_s:.1f}s wall"
        )


_session_stats: List[RunStats] = []


def drain_stats() -> List[RunStats]:
    """Return and clear the stats accumulated since the last drain."""
    stats = list(_session_stats)
    _session_stats.clear()
    return stats


# ======================================================================
# Cache
# ======================================================================
def _canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-stable structure for hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            **{k: _canonical(v) for k, v in dataclasses.asdict(value).items()},
        }
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, Path):
        return str(value)
    return value


def _code_fingerprint(fn: Callable) -> str:
    """A short hash of the trial function's source, for invalidation.

    Editing the trial body re-simulates; edits elsewhere in the package
    do not (delete the cache directory after simulator changes).
    """
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):
        source = getattr(fn, "__qualname__", repr(fn))
    return hashlib.sha256(source.encode()).hexdigest()[:16]


def cache_key(spec: TrialSpec) -> str:
    payload = {
        "experiment": spec.experiment_id,
        "fn": f"{spec.fn.__module__}.{spec.fn.__qualname__}",
        "code": _code_fingerprint(spec.fn),
        "params": _canonical(dict(spec.params)),
        "seed": spec.resolved_seed(),
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def _cache_path(cache_dir: Path, spec: TrialSpec, key: str) -> Path:
    return cache_dir / f"{spec.experiment_id}-{key[:24]}.json"


def _cache_load(path: Path) -> Optional[Dict[str, Any]]:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def _cache_store(
    path: Path,
    key: str,
    spec: TrialSpec,
    value: Any,
    elapsed_s: float,
    metrics: List[Dict[str, Any]],
) -> None:
    blob = {
        "key": key,
        "experiment": spec.experiment_id,
        "trial_index": spec.trial_index,
        "seed": spec.resolved_seed(),
        "elapsed_s": elapsed_s,
        "value": value,
        "metrics": metrics,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(blob))
    tmp.replace(path)


def clear_cache(cache_dir: Optional[os.PathLike] = None) -> int:
    """Delete every cached trial result; returns the number removed."""
    directory = Path(cache_dir) if cache_dir is not None else _active.cache_dir
    removed = 0
    if directory.is_dir():
        for entry in directory.glob("*.json"):
            entry.unlink()
            removed += 1
    return removed


# ======================================================================
# Execution
# ======================================================================
def _invoke(fn: Callable, params: Dict[str, Any], seed: int):
    """Worker-side trial execution.

    Returns ``(json-normalised value, secs, metric samples)``.  The
    capture context attaches to every enabled :class:`Observability`
    the trial constructs (each trial builds its own kernel), so the
    trial function needs no observability plumbing of its own.
    """
    t0 = time.perf_counter()
    with capture_metrics() as capture:
        value = fn(seed=seed, **params)
    elapsed = time.perf_counter() - t0
    # Normalise through JSON so fresh results are structurally identical
    # to cache hits (tuples -> lists, int dict keys -> str).  Samples too:
    # histogram merges compare ``bounds``, which must not differ between a
    # fresh tuple and a cached list.
    samples = json.loads(json.dumps(capture.samples()))
    return json.loads(json.dumps(value)), elapsed, samples


def run_trials(
    specs: Sequence[TrialSpec],
    *,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[os.PathLike] = None,
) -> List[Any]:
    """Run every spec, in parallel where possible; returns values in order.

    Keyword overrides beat the active :class:`RunnerConfig`.  Cached
    results are returned without touching the pool; uncached trials run
    inline when ``jobs == 1`` and on a process pool otherwise.
    """
    cfg = _active
    jobs = cfg.jobs if jobs is None else jobs
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    use_cache = cfg.use_cache if use_cache is None else use_cache
    directory = Path(cache_dir) if cache_dir is not None else cfg.cache_dir

    if not specs:
        return []
    experiment_id = specs[0].experiment_id
    stats = RunStats(experiment_id=experiment_id, trials=len(specs))
    wall_start = time.perf_counter()

    outcomes: List[Optional[TrialOutcome]] = [None] * len(specs)
    pending: List[int] = []
    keys: List[Optional[str]] = [None] * len(specs)
    for i, spec in enumerate(specs):
        if use_cache:
            keys[i] = cache_key(spec)
            hit = _cache_load(_cache_path(directory, spec, keys[i]))
            if hit is not None and hit.get("key") == keys[i]:
                outcomes[i] = TrialOutcome(
                    experiment_id=spec.experiment_id,
                    trial_index=spec.trial_index,
                    value=hit["value"],
                    elapsed_s=0.0,
                    cached=True,
                    metrics=hit.get("metrics", []),
                )
                stats.cached += 1
                stats.metric_samples = merge_samples(
                    stats.metric_samples, outcomes[i].metrics
                )
                if cfg.progress is not None:
                    cfg.progress(outcomes[i])
                continue
        pending.append(i)

    def finish(i: int, value: Any, elapsed: float, metrics: List[Dict[str, Any]]) -> None:
        spec = specs[i]
        outcomes[i] = TrialOutcome(
            experiment_id=spec.experiment_id,
            trial_index=spec.trial_index,
            value=value,
            elapsed_s=elapsed,
            cached=False,
            metrics=metrics,
        )
        stats.simulated += 1
        stats.trial_s.append(elapsed)
        stats.metric_samples = merge_samples(stats.metric_samples, metrics)
        if use_cache and keys[i] is not None:
            _cache_store(
                _cache_path(directory, spec, keys[i]),
                keys[i],
                spec,
                value,
                elapsed,
                metrics,
            )
        if cfg.progress is not None:
            cfg.progress(outcomes[i])

    if pending:
        if jobs == 1 or len(pending) == 1:
            for i in pending:
                spec = specs[i]
                value, elapsed, metrics = _invoke(
                    spec.fn, dict(spec.params), spec.resolved_seed()
                )
                finish(i, value, elapsed, metrics)
        else:
            workers = min(jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _invoke, specs[i].fn, dict(specs[i].params), specs[i].resolved_seed()
                    )
                    for i in pending
                ]
                # Collect in submission order: assembly stays deterministic
                # no matter which worker finishes first.
                for i, future in zip(pending, futures):
                    value, elapsed, metrics = future.result()
                    finish(i, value, elapsed, metrics)

    stats.wall_s = time.perf_counter() - wall_start
    _session_stats.append(stats)
    return [outcome.value for outcome in outcomes]  # type: ignore[union-attr]
