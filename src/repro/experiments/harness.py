"""Shared experiment plumbing: trial statistics and result tables."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


def mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and standard deviation (0.0 for a single value)."""
    n = len(values)
    if n == 0:
        raise ValueError("no values")
    mean = sum(values) / n
    if n == 1:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(var)


def format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 100:
            return f"{value:.0f}"
        if magnitude >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Plain aligned-columns rendering for terminal output."""
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    def line(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


@dataclass
class FigureResult:
    """One reproduced figure or table.

    ``rows`` is a list of dicts sharing the keys in ``columns``; the
    shape claims the reproduction makes about this experiment live in
    ``notes`` and are asserted by the benchmark wrappers.
    """

    figure_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    scale_note: str = ""

    def add(self, **cells: Any) -> None:
        unknown = set(cells) - set(self.columns)
        if unknown:
            raise KeyError(f"row has columns not declared: {sorted(unknown)}")
        self.rows.append(cells)

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def row_where(self, column: str, value: Any) -> Dict[str, Any]:
        for row in self.rows:
            if row.get(column) == value:
                return row
        raise KeyError(f"no row with {column}={value!r}")

    def render(self) -> str:
        body = format_table(
            self.columns, [[row.get(c, "") for c in self.columns] for row in self.rows]
        )
        parts = [f"== {self.figure_id}: {self.title} =="]
        if self.scale_note:
            parts.append(f"(scale: {self.scale_note})")
        parts.append(body)
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)
