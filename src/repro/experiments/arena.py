"""``repro arena`` — N concurrent gray-box clients on one shared kernel.

ROADMAP item 1's "millions of users" story in miniature: this driver
builds a tenant mix (FCCD / FLDC / MAC inference clients plus scan,
grep, and MAC-admitted-sort background jobs), interleaves all of them on
*one* kernel through :class:`repro.sim.arena.Arena`, and reports
per-client fairness, accuracy, and throughput as N sweeps 1 → 1024.

Accuracy is defined so contention is visible:

* **fccd** — each client owns a ``hot`` and a ``cold`` file (flushed at
  setup).  Per round it re-reads ``hot`` end to end, then asks FCCD to
  order ``[cold, hot]`` by cache residency; accuracy is the fraction of
  rounds ranking ``hot`` first.  On a quiet machine this is trivially
  1.0; under contention other tenants evict ``hot`` between the warm-up
  and the probes — the Heisenberg/interference regime the paper worries
  about, measured per tenant.
* **fldc** — layout_order of the client's own shuffled-name directory
  versus its true creation order (normalized by pairwise inversions).
  i-numbers are exact, not timing-derived, so this stays ~1.0 at every
  N — the control that separates timing-channel degradation (fccd, mac)
  from contention-proof inference.
* **mac** — bytes granted by ``gb_alloc`` relative to the request
  ceiling; memory pressure from other tenants shrinks grants.
* **scan / grep / gbsort** — no accuracy (throughput-only background);
  gbsort drives the MAC-admitted fastsort read phase, so admission
  waiting appears in the arena too.

Every quantity is deterministic: client names fix RNG streams and
policy order (:func:`repro.sim.arena.client_rng`), setup runs in
sorted-name order, and the obs-stream digest
(:func:`repro.obs.export.stream_digest`) is the reproducibility pin the
bench suite gates on.  At N=1 a client body is bit-identical to
:func:`run_single_client` driving the same body with no arena — the
equivalence the acceptance test asserts.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.apps.fastsort import gb_fastsort_read_phase
from repro.apps.grep import grep
from repro.apps.scan import linear_scan
from repro.experiments.harness import format_table
from repro.icl.fccd import FCCD
from repro.icl.fldc import FLDC
from repro.icl.mac import MAC
from repro.obs.export import stream_digest, write_jsonl
from repro.obs.views import (
    client_rollup,
    interference_matrix,
    process_names,
    render_matrix,
)
from repro.sim import Kernel, MachineConfig
from repro.sim import syscalls as sc
from repro.sim.arena import Arena, ArenaClient, client_rng, make_policy
from repro.sim.clock import MILLIS
from repro.sim.inject import _fnv1a, _splitmix64
from repro.sim.kernel import Oracle
from repro.workloads.files import create_files, make_file

KIB = 1024
MIB = 1024 * 1024

ARENA_SEED = 0xA12E7A

#: Default tenant composition, cycled deterministically over client
#: indices (index 0 is always fccd, so N=1 exercises the primary ICL).
DEFAULT_MIX = "fccd=6,fldc=3,mac=2,scan=2,grep=1,gbsort=1"

#: The acceptance sweep.
SWEEP_NS = (1, 2, 8, 64, 256, 1024)

_ROOT = "/mnt0/arena"
_SHARED_SCAN = f"{_ROOT}/shared-scan.dat"
_SHARED_GREP = tuple(f"{_ROOT}/shared-grep{i}.dat" for i in range(3))


def arena_config(memory_mb: int = 48) -> MachineConfig:
    """A small shared machine: per-tenant working sets are a few hundred
    KiB, so contention sets in around N≈64 and is severe by N=1024 while
    the full sweep still completes in seconds."""
    return MachineConfig(
        page_size=64 * KIB,
        memory_bytes=memory_mb * MIB,
        kernel_reserved_bytes=16 * MIB,
        data_disks=1,
    )


def _derived_rng(seed: int, name: str, domain: str) -> random.Random:
    """A setup-time RNG stream independent of the client's probe stream."""
    return random.Random(_splitmix64((seed ^ _fnv1a(f"{domain}/{name}")) & ((1 << 64) - 1)))


def _rank_accuracy(recovered: Sequence[str], truth: Sequence[str]) -> float:
    """1 minus the normalized pairwise-inversion count (1.0 = exact)."""
    rank = {path: i for i, path in enumerate(truth)}
    order = [rank[p] for p in recovered if p in rank]
    k = len(order)
    if k < 2:
        return 1.0
    inversions = sum(
        1
        for i in range(k)
        for j in range(i + 1, k)
        if order[i] > order[j]
    )
    return 1.0 - inversions / (k * (k - 1) / 2)


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly even, 1/n = one hog."""
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


# ======================================================================
# Client specs
# ======================================================================
@dataclass
class ClientSpec:
    """One tenant's recipe: private setup, body factory, arena knobs.

    ``body(client, kernel, markers)`` returns the drive generator;
    ``markers=False`` is the sequential fallback the single-client
    equivalence harness uses (no STEP sentinels, safe under
    ``kernel.run_process``).  ``shared`` names machine-wide assets
    (created once, whichever tenants need them).
    """

    name: str
    kind: str
    body: Callable[[Any, Kernel, bool], Generator]
    setup: Optional[Callable[[], Generator]] = None
    shared: Tuple[str, ...] = ()
    weight: float = 1.0
    quantum: Optional[int] = None


def _fccd_spec(name: str, seed: int, config: MachineConfig) -> ClientSpec:
    page = config.page_size
    nbytes = 8 * page
    rounds = 3
    hot = f"{_ROOT}/{name}.hot"
    # A fresh cold file per round: FCCD's own probes cache whatever they
    # touch (the Heisenberg effect), so re-probing one cold file would
    # make rounds 2..R degenerate ties even on an idle machine.  With a
    # per-round cold target, an idle machine scores exactly 1.0 and any
    # loss is contention — other tenants evicting `hot` between the
    # warm-up read and the probes.
    colds = [f"{_ROOT}/{name}.cold{r}" for r in range(rounds)]

    def setup() -> Generator:
        yield from make_file(hot, nbytes, sync=False)
        for cold in colds:
            yield from make_file(cold, nbytes, sync=False)

    def body(client: Any, kernel: Kernel, markers: bool = True) -> Generator:
        fccd = FCCD(
            rng=client.rng,
            access_unit_bytes=nbytes,
            prediction_unit_bytes=page,
            obs=kernel.obs,
            step_markers=markers,
        )
        correct = 0
        probes = 0
        for cold in colds:
            # Re-assert the working set: read `hot` end to end, leave
            # `cold` untouched.  Under contention other tenants evict
            # `hot` between this warm-up and the probes below.
            fd = (yield sc.open(hot)).value
            while not (yield sc.read(fd, 4 * page)).value.eof:
                pass
            yield sc.close(fd)
            yield from fccd.checkpoint()
            ordered, plans = yield from fccd.order_files([cold, hot])
            probes += sum(plan.total_probes for plan in plans.values())
            if ordered[0] == hot:
                correct += 1
        return {"kind": "fccd", "accuracy": correct / rounds, "probes": probes}

    return ClientSpec(name=name, kind="fccd", body=body, setup=setup)


def _fldc_spec(name: str, seed: int, config: MachineConfig) -> ClientSpec:
    directory = f"{_ROOT}/{name}.d"
    count = 8
    shuffle_rng = _derived_rng(seed, name, "fldc-setup")
    creation = [f"g{i:02d}" for i in range(count)]
    shuffle_rng.shuffle(creation)
    truth = [f"{directory}/{n}" for n in creation]

    def setup() -> Generator:
        yield sc.mkdir(directory)
        yield from create_files(
            directory, count, 2 * config.page_size, sync=False, names=creation
        )

    def body(client: Any, kernel: Kernel, markers: bool = True) -> Generator:
        fldc = FLDC(obs=kernel.obs, step_markers=markers)
        rounds = 3
        total = 0.0
        for _ in range(rounds):
            names_now = (yield sc.readdir(directory)).value
            ordered, _stats = yield from fldc.layout_order(
                sorted(f"{directory}/{n}" for n in names_now)
            )
            total += _rank_accuracy(ordered, truth)
        return {
            "kind": "fldc",
            "accuracy": total / rounds,
            "probes": rounds * count,
        }

    return ClientSpec(name=name, kind="fldc", body=body, setup=setup)


def _mac_spec(name: str, seed: int, config: MachineConfig) -> ClientSpec:
    page = config.page_size
    target = 32 * page

    def body(client: Any, kernel: Kernel, markers: bool = True) -> Generator:
        mac = MAC(
            page_size=page,
            initial_increment_bytes=4 * page,
            max_increment_bytes=16 * page,
            rng=client.rng,
            obs=kernel.obs,
            step_markers=markers,
        )
        rounds = 2
        granted = 0
        for _ in range(rounds):
            allocation = yield from mac.gb_alloc(page, target, page)
            if allocation is not None:
                granted += allocation.granted_bytes
                yield from mac.gb_free(allocation)
            yield from mac.checkpoint()
            yield sc.sleep(5 * MILLIS)
        return {
            "kind": "mac",
            "accuracy": granted / (rounds * target),
            "probes": mac.stats.probe_touches,
        }

    return ClientSpec(name=name, kind="mac", body=body)


def _scan_spec(name: str, seed: int, config: MachineConfig) -> ClientSpec:
    unit = 4 * config.page_size

    def body(client: Any, kernel: Kernel, markers: bool = True) -> Generator:
        total = 0
        for _ in range(2):
            report = yield from linear_scan(_SHARED_SCAN, unit=unit)
            total += report.bytes_read
        return {"kind": "scan", "accuracy": None, "bytes": total}

    return ClientSpec(
        name=name, kind="scan", body=body, shared=("scan",), quantum=8
    )


def _grep_spec(name: str, seed: int, config: MachineConfig) -> ClientSpec:
    unit = 4 * config.page_size

    def body(client: Any, kernel: Kernel, markers: bool = True) -> Generator:
        total = 0
        for _ in range(2):
            report = yield from grep(list(_SHARED_GREP), unit=unit)
            total += report.bytes_scanned
        return {"kind": "grep", "accuracy": None, "bytes": total}

    return ClientSpec(
        name=name, kind="grep", body=body, shared=("grep",), quantum=8
    )


def _gbsort_spec(name: str, seed: int, config: MachineConfig) -> ClientSpec:
    page = config.page_size
    input_path = f"{_ROOT}/{name}.in"
    run_dir = f"{_ROOT}/{name}.runs"
    nbytes = 32 * page

    def setup() -> Generator:
        yield sc.mkdir(run_dir)
        yield from make_file(input_path, nbytes, sync=False)

    def body(client: Any, kernel: Kernel, markers: bool = True) -> Generator:
        mac = MAC(
            page_size=page,
            initial_increment_bytes=4 * page,
            max_increment_bytes=16 * page,
            rng=client.rng,
            obs=kernel.obs,
            step_markers=markers,
        )
        try:
            report = yield from gb_fastsort_read_phase(
                input_path, run_dir, mac, min_pass_bytes=8 * page, unit=4 * page
            )
        except TimeoutError:
            # Admission starved out by the other tenants — a legitimate
            # outcome at high N, reported rather than fatal.
            return {"kind": "gbsort", "accuracy": None, "passes": 0, "starved": True}
        return {
            "kind": "gbsort",
            "accuracy": None,
            "passes": len(report.pass_bytes),
            "starved": False,
        }

    return ClientSpec(
        name=name, kind="gbsort", body=body, setup=setup, quantum=16
    )


_SPEC_BUILDERS: Dict[str, Callable[[str, int, MachineConfig], ClientSpec]] = {
    "fccd": _fccd_spec,
    "fldc": _fldc_spec,
    "mac": _mac_spec,
    "scan": _scan_spec,
    "grep": _grep_spec,
    "gbsort": _gbsort_spec,
}


def parse_mix(text: str) -> List[Tuple[str, int]]:
    """``"fccd=6,scan=2"`` → ``[("fccd", 6), ("scan", 2)]`` (validated)."""
    mix: List[Tuple[str, int]] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        kind, _eq, weight_text = part.partition("=")
        kind = kind.strip()
        if kind not in _SPEC_BUILDERS:
            raise ValueError(
                f"unknown client kind {kind!r}; choose from {', '.join(_SPEC_BUILDERS)}"
            )
        weight = int(weight_text) if weight_text else 1
        if weight < 1:
            raise ValueError(f"mix weight for {kind!r} must be >= 1")
        mix.append((kind, weight))
    if not mix:
        raise ValueError("empty client mix")
    return mix


def assign_kinds(n: int, mix: Sequence[Tuple[str, int]]) -> List[str]:
    """Kind per client index: the weighted pattern cycled over 0..n-1."""
    pattern = [kind for kind, weight in mix for _ in range(weight)]
    return [pattern[i % len(pattern)] for i in range(n)]


def build_specs(
    n: int, seed: int, config: MachineConfig, mix: str = DEFAULT_MIX
) -> List[ClientSpec]:
    """The N tenants, named ``<kind><index>`` so names are unique and
    sorted-name order (which fixes pids and the policy schedule) is
    stable."""
    if n < 1:
        raise ValueError("need at least one client")
    kinds = assign_kinds(n, parse_mix(mix))
    return [
        _SPEC_BUILDERS[kind](f"{kind}{index:04d}", seed, config)
        for index, kind in enumerate(kinds)
    ]


# ======================================================================
# Setup (shared by the arena and the single-client harness)
# ======================================================================
def _setup_machine(kernel: Kernel, specs: Sequence[ClientSpec]) -> None:
    """Create every private and shared asset, then flush the cache.

    Runs per-spec setups in sorted-name order — the same order the arena
    spawns clients — so the filesystem image (inode numbers, block
    placement) is a pure function of the spec set.  The final flush
    empties the file cache: every client starts from the same cold
    state, and at N=1 the image is identical to the single-client
    harness's.
    """
    def mkroot() -> Generator:
        yield sc.mkdir(_ROOT)

    kernel.run_process(mkroot(), "setup:root")
    shared: set = set()
    for spec in sorted(specs, key=lambda s: s.name):
        if spec.setup is not None:
            kernel.run_process(spec.setup(), f"setup:{spec.name}")
        shared.update(spec.shared)
    page = kernel.config.page_size
    if "scan" in shared:
        kernel.run_process(
            make_file(_SHARED_SCAN, 96 * page, sync=False), "setup:shared-scan"
        )
    if "grep" in shared:
        def grep_files() -> Generator:
            for path in _SHARED_GREP:
                yield from make_file(path, 16 * page, sync=False)

        kernel.run_process(grep_files(), "setup:shared-grep")
    Oracle(kernel).flush_file_cache()


# ======================================================================
# Report
# ======================================================================
@dataclass
class ArenaReport:
    """One arena run: per-client rows plus machine-wide aggregates."""

    n: int
    policy: str
    seed: int
    mix: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    sim_elapsed_ns: int = 0
    total_steps: int = 0
    total_turns: int = 0
    host_elapsed_s: float = 0.0
    fairness_turns: float = 1.0
    fairness_syscalls: float = 1.0
    kind_accuracy: Dict[str, float] = field(default_factory=dict)
    reclaims: int = 0
    digest: str = ""
    records: List[Dict[str, Any]] = field(default_factory=list)
    out_path: Optional[str] = None
    report_path: Optional[str] = None

    @property
    def steps_per_second(self) -> float:
        if self.host_elapsed_s <= 0:
            return 0.0
        return self.total_steps / self.host_elapsed_s

    def to_json(self) -> Dict[str, Any]:
        return {
            "type": "arena_report",
            "n": self.n,
            "policy": self.policy,
            "seed": self.seed,
            "mix": self.mix,
            "sim_elapsed_ns": self.sim_elapsed_ns,
            "total_steps": self.total_steps,
            "total_turns": self.total_turns,
            "host_elapsed_s": round(self.host_elapsed_s, 4),
            "fairness_turns": round(self.fairness_turns, 6),
            "fairness_syscalls": round(self.fairness_syscalls, 6),
            "kind_accuracy": {
                k: round(v, 6) for k, v in sorted(self.kind_accuracy.items())
            },
            "reclaims": self.reclaims,
            "digest": self.digest,
            "clients": self.rows,
        }

    def render(self, top: int = 12) -> str:
        parts = [
            f"== arena: N={self.n} policy={self.policy} seed={hex(self.seed)} ==",
            (
                f"steps={self.total_steps}  turns={self.total_turns}  "
                f"sim={self.sim_elapsed_ns / 1e9:.3f}s  "
                f"host={self.host_elapsed_s:.2f}s  "
                f"({self.steps_per_second / 1e3:.0f}k steps/s)"
            ),
            (
                f"fairness (Jain): turns={self.fairness_turns:.3f}  "
                f"syscalls={self.fairness_syscalls:.3f}  "
                f"reclaims={self.reclaims}"
            ),
            "accuracy by kind: "
            + (
                "  ".join(
                    f"{kind}={acc:.3f}"
                    for kind, acc in sorted(self.kind_accuracy.items())
                )
                or "(no accuracy-bearing clients)"
            ),
            f"obs digest: {self.digest}",
            "",
        ]
        shown = self.rows
        note = ""
        if len(shown) > top:
            shown = sorted(self.rows, key=lambda r: -r["syscalls"])[:top]
            note = (
                f"... {len(self.rows) - top} client row(s) elided"
                f" (top {top} by syscalls shown; full set in the JSON report)"
            )
        headers = [
            "client", "kind", "pid", "turns", "syscalls", "probes",
            "accuracy", "ev.caused", "ev.suffered", "thr(sys/s)",
        ]
        table_rows = [
            [
                row["name"], row["kind"], row["pid"], row["turns"],
                row["syscalls"], row["probes"],
                "-" if row["accuracy"] is None else f"{row['accuracy']:.3f}",
                row["evictions_caused"], row["evictions_suffered"],
                f"{row['throughput_per_s']:.0f}",
            ]
            for row in shown
        ]
        parts.append(format_table(headers, table_rows))
        if note:
            parts.append(note)
        matrix_records = (r for r in self.records if r.get("type") == "event")
        matrix = interference_matrix(matrix_records)
        if matrix:
            parts.append("")
            parts.append("interference matrix (reclaim events, evictor x victim):")
            parts.append(
                render_matrix(matrix, process_names(self.records), top=8)
            )
        if self.out_path:
            parts.append("")
            parts.append(f"wrote {len(self.records)} records to {self.out_path}")
        if self.report_path:
            parts.append(f"wrote report to {self.report_path}")
        return "\n".join(parts)


# ======================================================================
# Drivers
# ======================================================================
def run_arena(
    n: int,
    policy: str = "round-robin",
    seed: int = ARENA_SEED,
    mix: str = DEFAULT_MIX,
    config: Optional[MachineConfig] = None,
    out_path: Optional[str] = None,
    report_path: Optional[str] = None,
) -> ArenaReport:
    """Run N tenants to completion on one kernel; returns the report.

    ``out_path`` dumps the full obs stream as JSONL (the artifact CI
    validates); ``report_path`` writes the fairness/accuracy/throughput
    report as JSON.
    """
    config = config or arena_config()
    specs = build_specs(n, seed, config, mix)
    # Ring sized so spawn events survive the whole run (the validator's
    # pid check reads them) even when a thrashing high-N run emits a
    # reclaim event per probe miss.
    kernel = Kernel(config, event_capacity=max(100_000, 512 * n))
    host_start = time.perf_counter()
    _setup_machine(kernel, specs)
    arena = Arena(kernel, policy=make_policy(policy), seed=seed)
    for spec in specs:
        arena.add_client(
            spec.name,
            lambda client, _spec=spec: _spec.body(client, kernel, True),
            kind=spec.kind,
            weight=spec.weight,
            quantum=spec.quantum,
        )
    clients = arena.run()
    host_elapsed = time.perf_counter() - host_start
    records = list(kernel.obs.dump_records())
    report = _build_report(
        n, policy, seed, mix, arena, clients, kernel, records, host_elapsed
    )
    if out_path is not None:
        write_jsonl(Path(out_path), records)
        report.out_path = str(out_path)
    if report_path is not None:
        path = Path(report_path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n")
        report.report_path = str(report_path)
    return report


def _build_report(
    n: int,
    policy: str,
    seed: int,
    mix: str,
    arena: Arena,
    clients: List[ArenaClient],
    kernel: Kernel,
    records: List[Dict[str, Any]],
    host_elapsed: float,
) -> ArenaReport:
    rollup = client_rollup(records)
    sim_elapsed = kernel.clock.now
    sim_seconds = sim_elapsed / 1e9 if sim_elapsed else 0.0
    rows: List[Dict[str, Any]] = []
    by_kind: Dict[str, List[float]] = {}
    for client in clients:
        cell = rollup.get(client.pid, {})
        result = client.result if isinstance(client.result, dict) else {}
        accuracy = result.get("accuracy")
        if accuracy is not None:
            by_kind.setdefault(client.kind, []).append(float(accuracy))
        rows.append(
            {
                "name": client.name,
                "kind": client.kind,
                "pid": client.pid,
                "turns": client.turns,
                "parks": client.parks,
                "syscalls": client.syscalls,
                # Span-attributed probes when the ICL batches (fccd),
                # else the client's own count (mac's touch loops).
                "probes": cell.get("probes", 0) or int(result.get("probes") or 0),
                "accuracy": accuracy,
                "evictions_caused": cell.get("evictions_caused", 0),
                "evictions_suffered": cell.get("evictions_suffered", 0),
                "cpu_ns": client.cpu_ns,
                "finished_ns": client.finished_ns,
                "throughput_per_s": (
                    client.syscalls / sim_seconds if sim_seconds else 0.0
                ),
                "result": result or client.result,
            }
        )
    reclaims = sum(
        1
        for r in records
        if r.get("type") == "event" and r.get("name") == "kernel.reclaim"
    )
    return ArenaReport(
        n=n,
        policy=policy,
        seed=seed,
        mix=mix,
        rows=rows,
        sim_elapsed_ns=sim_elapsed,
        total_steps=arena.total_steps,
        total_turns=arena.total_turns,
        host_elapsed_s=host_elapsed,
        fairness_turns=jain_index([row["turns"] for row in rows]),
        fairness_syscalls=jain_index([row["syscalls"] for row in rows]),
        kind_accuracy={
            kind: sum(values) / len(values) for kind, values in by_kind.items()
        },
        reclaims=reclaims,
        digest=stream_digest(records),
        records=records,
    )


class _SoloHandle:
    """Stands in for :class:`ArenaClient` under ``run_single_client``."""

    def __init__(self, name: str, rng: random.Random) -> None:
        self.name = name
        self.rng = rng
        self.kind = ""
        self.pid = -1


def run_single_client(
    kind: str,
    seed: int = ARENA_SEED,
    config: Optional[MachineConfig] = None,
) -> Dict[str, Any]:
    """Drive one client body with **no arena** — the bit-identity reference.

    Same spec builder, same setup order, same ``(seed, name)`` RNG
    stream as ``run_arena(n=1, mix=kind)``; the only difference is that
    the body runs to completion under ``kernel.run_process`` with step
    markers off.  The acceptance test asserts the returned accuracy is
    bit-identical to the arena's at N=1.
    """
    config = config or arena_config()
    spec = _SPEC_BUILDERS[kind](f"{kind}0000", seed, config)
    kernel = Kernel(config)
    _setup_machine(kernel, [spec])
    handle = _SoloHandle(spec.name, client_rng(seed, spec.name))
    return kernel.run_process(spec.body(handle, kernel, False), spec.name)


def arena_sweep(
    ns: Sequence[int] = SWEEP_NS,
    policy: str = "round-robin",
    seed: int = ARENA_SEED,
    mix: str = DEFAULT_MIX,
    config: Optional[MachineConfig] = None,
) -> List[ArenaReport]:
    """One fresh machine per N; returns the reports in sweep order."""
    return [
        run_arena(n, policy=policy, seed=seed, mix=mix, config=config)
        for n in ns
    ]


def render_sweep(reports: Sequence[ArenaReport]) -> str:
    headers = [
        "N", "steps", "sim(s)", "host(s)", "ksteps/s",
        "fair(turns)", "fair(sys)", "fccd", "fldc", "mac", "reclaims",
        "digest",
    ]
    rows = []
    for report in reports:
        acc = report.kind_accuracy
        rows.append(
            [
                report.n,
                report.total_steps,
                f"{report.sim_elapsed_ns / 1e9:.2f}",
                f"{report.host_elapsed_s:.2f}",
                f"{report.steps_per_second / 1e3:.0f}",
                f"{report.fairness_turns:.3f}",
                f"{report.fairness_syscalls:.3f}",
                "-" if "fccd" not in acc else f"{acc['fccd']:.3f}",
                "-" if "fldc" not in acc else f"{acc['fldc']:.3f}",
                "-" if "mac" not in acc else f"{acc['mac']:.3f}",
                report.reclaims,
                report.digest[:12],
            ]
        )
    return "== arena sweep ==\n" + format_table(headers, rows)
