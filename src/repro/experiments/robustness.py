"""Robustness sweep: ICL answer accuracy versus injected noise.

Each trial builds a small kernel, installs a :class:`FaultInjector`
with :func:`noise_profile`'s ladder (latency jitter and spikes,
transient EAGAIN/EINTR faults, scheduling jitter, and — from level 0.3
— background interference processes), runs one ICL question whose
ground truth the oracle knows, and scores the answer:

* **FCCD** — half of a directory's files are re-read after a cache
  flush; the score is the fraction of (cached, cold) pairs the inferred
  ordering puts in the right relative order.
* **FLDC** — files are created in a known order under randomised names;
  the score is pairwise agreement between ``layout_order`` and creation
  order.
* **MAC** — two admission decisions: a modest request on a free machine
  (must grant, within oracle availability) and an impossible request
  (must deny); the score is the fraction decided correctly.

Every trial runs in a *hardened* and an *unhardened* variant sharing
the same injection seed, so each row of the figure compares the two
configurations under byte-identical fault schedules.  Hardened means
the defaults grown for this purpose: bounded retry-with-backoff on
probe syscalls, probe re-sampling with outlier rejection (FCCD),
confidence-gated ordering, and windowed+retried verify loops (MAC).
Unhardened means ``NO_RETRY`` and every hardening knob at its off
default — a transient fault is an unanswered question (accuracy 0).

``NOISE_BUDGET`` is the documented level up to which hardened answers
are expected to stay correct; the differential harness and the tracked
benchmark both assert at that level.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.harness import FigureResult, mean_std
from repro.experiments.runner import TrialSpec, derive_seed, run_trials
from repro.icl.fccd import FCCD
from repro.icl.fldc import FLDC
from repro.icl.mac import MAC
from repro.sim import (
    FaultInjector,
    Kernel,
    MachineConfig,
    MILLIS,
    NOISE_DOMAINS,
    TransientError,
    noise_profile,
)
from repro.sim import syscalls as sc
from repro.sim.inject import horizon_after
from repro.toolbox.cluster import two_means
from repro.toolbox.retry import NO_RETRY
from repro.workloads.files import create_files

KIB = 1024
MIB = 1024 * 1024

#: Noise level (see :func:`repro.sim.inject.noise_profile`) up to which
#: the hardened ICLs are expected to keep answering correctly.  At 0.5:
#: 10 us probe jitter, 5% 8 ms spikes, 5% transient faults, 25 us
#: scheduling jitter, plus a cache dirtier and a CPU hog.
NOISE_BUDGET = 0.5

LEVELS = (0.0, 0.25, 0.5, 0.75, 1.0)

#: How long the background interference processes run past the point
#: the ICL starts probing (simulated time).
INTERFERENCE_HORIZON_NS = 300 * MILLIS


def fccd_trial_config() -> MachineConfig:
    """Small pages so repeated probe rounds stay Heisenberg-safe.

    A prediction unit spans 16 pages; five probe rounds self-cache at
    most 5 of them, so a cold unit still answers slow with high
    probability on every round.
    """
    return MachineConfig(
        page_size=16 * KIB,
        memory_bytes=64 * MIB,
        kernel_reserved_bytes=8 * MIB,
        data_disks=1,
    )


def small_trial_config() -> MachineConfig:
    """The FLDC/MAC machine: 56 MB available, 64 KiB pages."""
    return MachineConfig(
        page_size=64 * KIB,
        memory_bytes=64 * MIB,
        kernel_reserved_bytes=8 * MIB,
        data_disks=1,
    )


def _pairwise_accuracy(order: Sequence[str], rank: Mapping[str, int]) -> float:
    """Fraction of pairs ``order`` places consistently with ``rank``."""
    correct = total = 0
    for i, first in enumerate(order):
        for second in order[i + 1 :]:
            total += 1
            if rank[first] < rank[second]:
                correct += 1
    return correct / total if total else 1.0


def _binary_ordering_accuracy(
    order: Sequence[str], cached: Sequence[str]
) -> float:
    """Fraction of (cached, cold) pairs ordered cached-first."""
    position = {path: i for i, path in enumerate(order)}
    cached_set = set(cached)
    cold = [p for p in order if p not in cached_set]
    pairs = [(c, u) for c in cached if c in position for u in cold]
    if not pairs:
        return 1.0
    correct = sum(1 for c, u in pairs if position[c] < position[u])
    return correct / len(pairs)


def _install_noise(
    kernel: Kernel,
    level: float,
    seed: int,
    domains: Optional[Tuple[str, ...]] = None,
) -> FaultInjector:
    injector = FaultInjector(noise_profile(level, seed=seed, domains=domains))
    injector.install(kernel)
    injector.spawn_interference(
        kernel, horizon_after(kernel, INTERFERENCE_HORIZON_NS)
    )
    return injector


# ======================================================================
# Trial functions (module-level: picklable for the process pool)
# ======================================================================
def _fccd_robustness_trial(
    seed: int,
    *,
    config: MachineConfig,
    level: float,
    hardened: bool,
    domains: Optional[Tuple[str, ...]] = None,
    nfiles: int = 8,
    file_kib: int = 1024,
) -> Dict[str, object]:
    """Cached/cold ordering accuracy for one FCCD sweep under noise."""
    kernel = Kernel(config)
    directory = "/mnt0/rob"

    def setup():
        yield sc.mkdir(directory)
        paths = yield from create_files(directory, nfiles, file_kib * KIB)
        return paths

    paths = kernel.run_process(setup(), "setup")
    kernel.oracle.flush_file_cache()
    cached = paths[0::2]

    def warm():
        for path in cached:
            fd = (yield sc.open(path)).value
            size = (yield sc.fstat(fd)).value.size
            for offset in range(0, size, 256 * KIB):
                yield sc.pread(fd, offset, 256 * KIB)
            yield sc.close(fd)

    kernel.run_process(warm(), "warm")

    injector = _install_noise(kernel, level, seed, domains)
    fccd = FCCD(
        rng=random.Random(seed),
        access_unit_bytes=file_kib * KIB,
        prediction_unit_bytes=256 * KIB,
        obs=kernel.obs,
        retry=None if hardened else NO_RETRY,
        max_resamples=2 if hardened else 0,
    )

    def probe():
        try:
            if hardened:
                ordered, plans, _conf = yield from fccd.order_files_confident(
                    paths, rounds=3
                )
            else:
                ordered, plans = yield from fccd.order_files(paths)
        except TransientError:
            return None
        return ordered, plans

    process = kernel.spawn(probe(), "fccd")
    kernel.run()
    injector.uninstall()
    if process.result is None:
        return {"accuracy": 0.0, "answer": None}
    ordered, plans = process.result
    # The semantic answer is the inferred cached/cold partition (the
    # relative order of two equally-cold files is not a claim the probe
    # times support); two-means on the per-file scores recovers it.
    split = two_means([plans[path].mean_probe_ns for path in paths])
    inferred_cached = sorted(paths[i] for i in split.low_group)
    return {
        "accuracy": _binary_ordering_accuracy(ordered, cached),
        "answer": inferred_cached,
    }


def _fldc_robustness_trial(
    seed: int,
    *,
    config: MachineConfig,
    level: float,
    hardened: bool,
    domains: Optional[Tuple[str, ...]] = None,
    nfiles: int = 12,
) -> Dict[str, object]:
    """Creation-order recovery accuracy for one FLDC sweep under noise."""
    kernel = Kernel(config)
    rng = random.Random(seed)
    # Names whose lexical order is uncorrelated with creation order, so
    # only the probed i-numbers can recover the truth.
    names = [f"n{rng.randrange(10 ** 8):08d}-{i:02d}" for i in range(nfiles)]
    directory = "/mnt0/robdir"

    def setup():
        yield sc.mkdir(directory)
        paths = yield from create_files(directory, nfiles, 4 * KIB, names=names)
        return paths

    creation_order = kernel.run_process(setup(), "setup")

    injector = _install_noise(kernel, level, seed, domains)
    # Per-path stat (not one batched call) in both variants: the two
    # configurations must face the same number of fault opportunities.
    fldc = FLDC(
        rng=random.Random(seed),
        obs=kernel.obs,
        batch_probes=False,
        retry=None if hardened else NO_RETRY,
    )
    presented = sorted(creation_order)

    def probe():
        try:
            ordered, _stats = yield from fldc.layout_order(presented)
        except TransientError:
            return None
        return ordered

    process = kernel.spawn(probe(), "fldc")
    kernel.run()
    injector.uninstall()
    ordered = process.result
    if ordered is None:
        return {"accuracy": 0.0, "answer": None}
    rank = {path: i for i, path in enumerate(creation_order)}
    return {
        "accuracy": _pairwise_accuracy(ordered, rank),
        "answer": list(ordered),
    }


def _mac_robustness_trial(
    seed: int,
    *,
    config: MachineConfig,
    level: float,
    hardened: bool,
    domains: Optional[Tuple[str, ...]] = None,
) -> Dict[str, object]:
    """Admission-decision correctness for one MAC run under noise."""
    kernel = Kernel(config)
    injector = _install_noise(kernel, level, seed, domains)
    available = config.available_bytes
    mac = MAC(
        page_size=config.page_size,
        initial_increment_bytes=4 * MIB,
        max_increment_bytes=16 * MIB,
        rng=random.Random(seed),
        obs=kernel.obs,
        retry=None if hardened else NO_RETRY,
        robust_verify=hardened,
        verify_retries=2 if hardened else 0,
    )

    def app():
        try:
            # A modest request on an otherwise free machine: must grant,
            # and the grant must fit inside what the oracle says exists.
            allocation = yield from mac.gb_alloc(16 * MIB, 32 * MIB, MIB)
            grant_ok = (
                allocation is not None
                and 16 * MIB <= allocation.granted_bytes <= available
            )
            if allocation is not None:
                yield from mac.gb_free(allocation)
            # An impossible request: more than physical memory. Must deny.
            impossible = available + 16 * MIB
            over = yield from mac.gb_alloc(impossible, impossible, MIB)
            deny_ok = over is None
            if over is not None:
                yield from mac.gb_free(over)
        except TransientError:
            return None
        return {"grant": bool(grant_ok), "deny": bool(deny_ok)}

    process = kernel.spawn(app(), "mac")
    kernel.run()
    injector.uninstall()
    decisions = process.result
    if decisions is None:
        return {"accuracy": 0.0, "answer": None}
    accuracy = (int(decisions["grant"]) + int(decisions["deny"])) / 2.0
    return {"accuracy": accuracy, "answer": decisions}


_TRIAL_FNS = {
    "fccd": _fccd_robustness_trial,
    "fldc": _fldc_robustness_trial,
    "mac": _mac_robustness_trial,
}


def _trial_spec(
    icl: str,
    level: float,
    hardened: bool,
    trial: int,
    base_seed: int,
    domains: Optional[Tuple[str, ...]] = None,
) -> TrialSpec:
    config = fccd_trial_config() if icl == "fccd" else small_trial_config()
    # Hardened and unhardened variants share a seed (only ``hardened``
    # differs in params), so each comparison faces the identical fault
    # schedule; the cache still keys on the full params.
    return TrialSpec(
        experiment_id="robustness",
        trial_index=trial,
        fn=_TRIAL_FNS[icl],
        params=dict(
            config=config, level=level, hardened=hardened, domains=domains
        ),
        seed=derive_seed(f"robustness-{icl}-{level:.2f}", trial, base_seed),
    )


# ======================================================================
# Assembly
# ======================================================================
def robustness_noise_sweep(
    levels: Sequence[float] = LEVELS,
    trials: int = 3,
    icls: Sequence[str] = ("fccd", "fldc", "mac"),
    seed: int = 59,
    domain: Optional[str] = None,
) -> FigureResult:
    """ICL answer accuracy vs injected noise, hardened vs unhardened.

    ``domain`` restricts the injector to one noise family (a member of
    :data:`repro.sim.NOISE_DOMAINS`: ``"latency"``, ``"faults"``,
    ``"sched"``, or ``"background"``) so an accuracy drop — or a covert
    channel's capacity loss under the same injector — can be attributed
    to a specific defensive knob instead of the whole ladder at once.
    ``None`` keeps the full profile.
    """
    unknown = [name for name in icls if name not in _TRIAL_FNS]
    if unknown:
        raise ValueError(f"unknown ICL(s): {', '.join(unknown)}")
    if domain is not None and domain not in NOISE_DOMAINS:
        raise ValueError(
            f"unknown noise domain {domain!r};"
            f" choices: {', '.join(NOISE_DOMAINS)}"
        )
    domains = None if domain is None else (domain,)
    result = FigureResult(
        figure_id="robustness" if domain is None else f"robustness-{domain}",
        title="ICL answer accuracy vs injected noise level"
        + ("" if domain is None else f" ({domain}-only noise)"),
        columns=[
            "icl",
            "noise_level",
            "hardened_acc",
            "hardened_std",
            "baseline_acc",
            "baseline_std",
        ],
        scale_note=(
            f"noise budget {NOISE_BUDGET}; {trials} trial(s) per cell;"
            " shared fault schedules per (level, trial);"
            f" domains={'all' if domain is None else domain}"
        ),
    )
    cells: List[Tuple[str, float, bool]] = []
    specs: List[TrialSpec] = []
    for icl in icls:
        for level in levels:
            for hardened in (True, False):
                for trial in range(trials):
                    specs.append(
                        _trial_spec(icl, level, hardened, trial, seed, domains)
                    )
                    cells.append((icl, level, hardened))
    values = run_trials(specs)
    scores: Dict[Tuple[str, float, bool], List[float]] = {}
    for (icl, level, hardened), value in zip(cells, values):
        scores.setdefault((icl, level, hardened), []).append(
            float(value["accuracy"])
        )
    for icl in icls:
        for level in levels:
            hard_mean, hard_std = mean_std(scores[(icl, level, True)])
            base_mean, base_std = mean_std(scores[(icl, level, False)])
            result.add(
                icl=icl,
                noise_level=level,
                hardened_acc=round(hard_mean, 4),
                hardened_std=round(hard_std, 4),
                baseline_acc=round(base_mean, 4),
                baseline_std=round(base_std, 4),
            )
    result.notes.append(
        "hardened = retry+backoff, resampling, confidence gate, windowed"
        " verify; baseline = NO_RETRY with every hardening knob off"
    )
    result.notes.append(
        f"acceptance: hardened accuracy >= 0.9 at level {NOISE_BUDGET}"
        " while the baseline demonstrably degrades"
    )
    return result


def differential_answers(
    level: float = NOISE_BUDGET,
    trials: int = 2,
    icls: Sequence[str] = ("fccd", "fldc", "mac"),
    seed: int = 59,
) -> Dict[str, bool]:
    """Twin-kernel differential check at one noise level.

    For each ICL, run the hardened variant on a quiet machine and on a
    noisy twin driven by the same seed; report whether every pair of
    answers (orderings, admission decisions) matches.  With ``level``
    at or below :data:`NOISE_BUDGET` the expected value is all-True.
    """
    verdict: Dict[str, bool] = {}
    for icl in icls:
        matches = True
        for trial in range(trials):
            quiet_spec = _trial_spec(icl, 0.0, True, trial, seed)
            noisy = _trial_spec(icl, level, True, trial, seed)
            # Quiet twin must share the noisy twin's seed so the only
            # difference between the kernels is the injected noise.
            quiet = TrialSpec(
                experiment_id=quiet_spec.experiment_id,
                trial_index=quiet_spec.trial_index,
                fn=quiet_spec.fn,
                params=dict(quiet_spec.params, level=0.0),
                seed=noisy.resolved_seed(),
            )
            quiet_value, noisy_value = run_trials([quiet, noisy])
            matches = matches and quiet_value["answer"] == noisy_value["answer"]
        verdict[icl] = matches
    return verdict
