"""``repro channels`` — covert-channel capacity on the multi-tenant arena.

The paper's thesis is that timing channels carry enough information to
*control* a gray-box OS; this experiment measures the same channels as
*communication*.  Two tenants who share nothing but the kernel — no
files opened by both for the writeback channel, one read-only file of
shared visibility for the residency channel — exchange a framed payload
(:mod:`repro.icl.channels`), and the harness reports the two numbers an
attacker and a defender both care about:

* **bandwidth** — payload bits per second of *simulated* time, measured
  from the sender's first cell boundary to the receiver's finish;
* **bit-error rate** — decoded payload versus the known pseudorandom
  payload, with the codec's parity errors as the receiver's own
  (ground-truth-free) error signal.

Both channels run as resumable arena clients (``step_markers=True``) on
one shared kernel.  Round-robin granting plus sorted-name order gives
the protocol its clock: the sender (``a-tx``) asserts cell *i* and
parks, the receiver (``b-rx``) probes cell *i* and parks, and optional
background tenants (``w-bg*``) and injector interference processes
(``z-inject-*``) take their turns in between — the defender's knobs.
Interference runs as quantum-parked clients, not free-running sleepers,
because ``run_until_blocked`` advances the clock to future-ready
processes (a sleeper beside a parked arena would burn its whole horizon
inside one slice).

Determinism: the payload, client RNG streams, and injector schedules
are all pure functions of ``(seed, config)``; the obs-stream digest
(:func:`repro.obs.export.stream_digest`) is the reproducibility pin the
bench suite (``benchmarks/bench_channels.py``) gates on.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from repro.experiments.harness import format_table
from repro.icl.channels import (
    DecodeResult,
    FrameSpec,
    ResidencyChannelReceiver,
    ResidencyChannelSender,
    WritebackChannelReceiver,
    WritebackChannelSender,
    ber,
    encode_frame,
    payload_bits,
)
from repro.obs.export import stream_digest, write_jsonl
from repro.sim import Kernel, MachineConfig, PLATFORMS, TransientError
from repro.sim import syscalls as sc
from repro.sim.arena import Arena, ArenaClient, make_policy
from repro.sim.clock import MILLIS, SECONDS
from repro.sim.inject import (
    FaultInjector,
    horizon_after,
    interference_bodies,
    noise_profile,
)
from repro.sim.kernel import Oracle
from repro.workloads.files import make_file

KIB = 1024
MIB = 1024 * 1024

CHANNELS_SEED = 0xC04EC7

#: The two implemented channels, in report order.
CHANNEL_KINDS = ("residency", "writeback")

#: Default wire format: 8 calibration cells, even parity every 8 bits.
DEFAULT_SPEC = FrameSpec(preamble_cells=8, parity="even", parity_block=8)

#: Receiver probe size and sender safety margin for the writeback
#: channel, in pages.  The sender loads the dirty count to
#: ``limit - WB_MARGIN_PAGES`` (never self-triggering, margin also
#: absorbs metadata residue ``fsync`` does not clean); the receiver
#: writes ``WB_PROBE_PAGES > WB_MARGIN_PAGES``, so a loaded throttle
#: always crosses and the flush is charged to the receiver's write.
WB_PROBE_PAGES = 32
WB_MARGIN_PAGES = 16

#: How long injector interference keeps running (simulated), measured
#: from the start of the arena run.  Sized to cover a whole default
#: frame so noise applies to every cell, not just the preamble.
INTERFERENCE_HORIZON_NS = 2 * SECONDS

_ROOT = "/mnt0/chan"


def channels_config() -> MachineConfig:
    """The shared channel machine: 16 KiB pages, 88 MiB available.

    Sized so netbsd15's fixed 64 MiB file pool fits (the strictest
    platform), a default residency frame occupies a few percent of the
    cache, and the writeback limit sits in the hundreds of pages.
    """
    return MachineConfig(
        page_size=16 * KIB,
        memory_bytes=96 * MIB,
        kernel_reserved_bytes=8 * MIB,
        data_disks=1,
    )


# ======================================================================
# Report
# ======================================================================
@dataclass
class ChannelReport:
    """One transmission: channel quality plus the determinism pin."""

    channel: str
    platform: str
    noise: float
    n_background: int
    seed: int
    n_bits: int
    cells: int
    sent_bits: List[int]
    decoded_bits: List[int]
    ber: float
    parity_errors: int
    confidence: float
    bandwidth_bits_per_s: float
    frame_span_ns: int
    sim_elapsed_ns: int
    host_elapsed_s: float
    digest: str
    latencies: List[int] = field(default_factory=list)
    records: List[Dict[str, Any]] = field(default_factory=list)
    out_path: Optional[str] = None
    report_path: Optional[str] = None

    @property
    def decoded_text(self) -> str:
        return "".join(str(b) for b in self.decoded_bits)

    def to_json(self) -> Dict[str, Any]:
        return {
            "type": "channel_report",
            "channel": self.channel,
            "platform": self.platform,
            "noise": self.noise,
            "n_background": self.n_background,
            "seed": self.seed,
            "n_bits": self.n_bits,
            "cells": self.cells,
            "ber": round(self.ber, 6),
            "parity_errors": self.parity_errors,
            "confidence": round(self.confidence, 6),
            "bandwidth_bits_per_s": round(self.bandwidth_bits_per_s, 3),
            "frame_span_ns": self.frame_span_ns,
            "sim_elapsed_ns": self.sim_elapsed_ns,
            "host_elapsed_s": round(self.host_elapsed_s, 4),
            "sent": "".join(str(b) for b in self.sent_bits),
            "decoded": self.decoded_text,
            "digest": self.digest,
        }

    def render(self) -> str:
        parts = [
            (
                f"== channel: {self.channel} platform={self.platform} "
                f"noise={self.noise:g} background={self.n_background} "
                f"seed={hex(self.seed)} =="
            ),
            (
                f"payload {self.n_bits} bits in {self.cells} cells  "
                f"BER={self.ber:.4f}  parity_errors={self.parity_errors}  "
                f"preamble confidence={self.confidence:.3f}"
            ),
            (
                f"bandwidth {self.bandwidth_bits_per_s:.1f} bits/s (sim)  "
                f"frame span {self.frame_span_ns / 1e6:.1f} ms  "
                f"host {self.host_elapsed_s:.2f}s"
            ),
            f"obs digest: {self.digest}",
        ]
        if self.ber > 0:
            sent = "".join(str(b) for b in self.sent_bits)
            parts.append(f"sent:    {sent}")
            parts.append(f"decoded: {self.decoded_text}")
        if self.out_path:
            parts.append(f"wrote {len(self.records)} records to {self.out_path}")
        if self.report_path:
            parts.append(f"wrote report to {self.report_path}")
        return "\n".join(parts)


# ======================================================================
# Driver
# ======================================================================
def _background_factory(
    path: str, page: int, rounds: int = 4
) -> Callable[[ArenaClient], Generator]:
    """A read-only scan tenant: cache pressure without dirty pages."""

    def factory(client: ArenaClient) -> Generator:
        def body() -> Generator:
            # Shrug off injected transients: background pressure must
            # keep pressing on the machine the injector makes hostile.
            while True:
                try:
                    fd = (yield sc.open(path)).value
                    size = (yield sc.fstat(fd)).value.size
                    break
                except TransientError:
                    continue
            for _ in range(rounds):
                for offset in range(0, size, 4 * page):
                    try:
                        yield sc.pread(fd, offset, 4 * page)
                    except TransientError:
                        continue
            yield sc.close(fd)
            return {"kind": "background", "rounds": rounds}

        return body()

    return factory


def run_channel(
    channel: str = "residency",
    *,
    noise: float = 0.0,
    n_background: int = 0,
    platform: str = "linux22",
    seed: int = CHANNELS_SEED,
    n_bits: int = 48,
    spec: Optional[FrameSpec] = None,
    numpy_paths: bool = True,
    out_path: Optional[str] = None,
    report_path: Optional[str] = None,
) -> ChannelReport:
    """Transmit one frame over ``channel`` and score it.

    ``noise`` drives :func:`repro.sim.inject.noise_profile`'s full
    ladder (the defender's ablation filters it per domain via
    :func:`repro.experiments.robustness.robustness_noise_sweep`);
    ``n_background`` adds read-only scan tenants.  ``out_path`` dumps
    the obs stream as JSONL, ``report_path`` the report JSON.
    """
    if channel not in CHANNEL_KINDS:
        raise ValueError(
            f"unknown channel {channel!r}; choices: {', '.join(CHANNEL_KINDS)}"
        )
    if platform not in PLATFORMS:
        raise ValueError(
            f"unknown platform {platform!r}; choices: {', '.join(sorted(PLATFORMS))}"
        )
    if n_background < 0:
        raise ValueError("n_background must be >= 0")
    spec = spec or DEFAULT_SPEC
    config = channels_config()
    page = config.page_size
    bits = payload_bits(seed, n_bits)
    cells = encode_frame(bits, spec)
    ncells = len(cells)

    kernel = Kernel(
        config,
        platform=PLATFORMS[platform],
        event_capacity=max(100_000, 2048 * (n_background + 4)),
        numpy_paths=numpy_paths,
    )
    host_start = time.perf_counter()

    res_path = f"{_ROOT}/res.dat"
    wb_tx_path = f"{_ROOT}/wb-tx.dat"
    wb_rx_path = f"{_ROOT}/wb-rx.dat"
    bg_paths = [f"{_ROOT}/bg{i:02d}.dat" for i in range(n_background)]
    # Gray-box parameter knowledge: the bdflush limit as a fraction of
    # file-cache capacity.  The sender parks the dirty count just below
    # it; platforms differ through ``file_capacity_pages`` (netbsd15's
    # fixed pool is smaller than the unified platforms').
    dirty_limit = int(kernel.mm.file_capacity_pages * config.dirty_limit_frac)
    load_pages = dirty_limit - WB_MARGIN_PAGES
    if load_pages < 1:
        raise ValueError(
            f"machine too small for the writeback channel (limit {dirty_limit})"
        )

    def setup() -> Generator:
        yield sc.mkdir(_ROOT)
        if channel == "residency":
            yield from make_file(
                res_path, ncells * 2 * page, sync=False
            )
        else:
            yield from make_file(wb_tx_path, load_pages * page, sync=True)
            yield from make_file(wb_rx_path, WB_PROBE_PAGES * page, sync=True)
        for path in bg_paths:
            yield from make_file(path, 64 * page, sync=False)

    kernel.run_process(setup(), "setup:channels")
    # Move to known state: every tenant starts against a cold cache.
    Oracle(kernel).flush_file_cache()

    injector = FaultInjector(noise_profile(noise, seed=seed))
    injector.install(kernel)

    arena = Arena(kernel, policy=make_policy("round-robin"), seed=seed)
    # Sorted-name order is the protocol clock: a-tx < b-rx < w-bg* <
    # z-inject*, so each turn runs sender cell i, then receiver cell i,
    # then one quantum of every perturbing tenant.
    if channel == "residency":
        receiver = ResidencyChannelReceiver(
            res_path, page, obs=kernel.obs, step_markers=True
        )
        arena.add_client(
            "a-tx",
            lambda client: ResidencyChannelSender(
                res_path, page, obs=kernel.obs, step_markers=True
            ).send(cells),
            kind="tx",
        )
    else:
        receiver = WritebackChannelReceiver(
            wb_rx_path, page, probe_pages=WB_PROBE_PAGES,
            obs=kernel.obs, step_markers=True,
        )
        arena.add_client(
            "a-tx",
            lambda client: WritebackChannelSender(
                wb_tx_path, page, load_pages,
                obs=kernel.obs, step_markers=True,
            ).send(cells),
            kind="tx",
        )
    arena.add_client(
        "b-rx", lambda client: receiver.receive(ncells), kind="rx"
    )
    for i, path in enumerate(bg_paths):
        arena.add_client(
            f"w-bg{i:02d}",
            _background_factory(path, page),
            kind="background",
            quantum=8,
        )
    horizon = horizon_after(kernel, INTERFERENCE_HORIZON_NS)
    for name, gen in interference_bodies(injector.config, horizon):
        arena.add_client(
            f"z-{name}",
            lambda client, _gen=gen: _gen,
            kind="interference",
            quantum=8,
        )

    clients = arena.run()
    injector.uninstall()
    host_elapsed = time.perf_counter() - host_start

    by_name = {c.name: c for c in clients}
    tx_client, rx_client = by_name["a-tx"], by_name["b-rx"]
    latencies = list(rx_client.result)
    decoded: DecodeResult = receiver.decode(latencies, spec)
    # The channel is occupied from the sender's first cell boundary to
    # the receiver's finish — bandwidth charges the whole protocol,
    # preamble and parity included, against payload bits only.
    frame_start = tx_client.step_log[0][1] if tx_client.step_log else 0
    frame_span = max(rx_client.finished_ns - frame_start, 1)
    records = list(kernel.obs.dump_records())
    report = ChannelReport(
        channel=channel,
        platform=platform,
        noise=noise,
        n_background=n_background,
        seed=seed,
        n_bits=n_bits,
        cells=ncells,
        sent_bits=bits,
        decoded_bits=decoded.bits,
        ber=ber(bits, decoded.bits),
        parity_errors=decoded.parity_errors,
        confidence=decoded.confidence,
        bandwidth_bits_per_s=n_bits / (frame_span / 1e9),
        frame_span_ns=frame_span,
        sim_elapsed_ns=kernel.clock.now,
        host_elapsed_s=host_elapsed,
        digest=stream_digest(records),
        latencies=latencies,
        records=records,
    )
    if out_path is not None:
        write_jsonl(Path(out_path), records)
        report.out_path = str(out_path)
    if report_path is not None:
        path = Path(report_path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"
        )
        report.report_path = str(report_path)
    return report


# ======================================================================
# Sweep
# ======================================================================
def channel_sweep(
    channels: Sequence[str] = CHANNEL_KINDS,
    platforms: Sequence[str] = ("linux22", "netbsd15", "solaris7"),
    noise_levels: Sequence[float] = (0.0, 0.4, 0.8),
    n_background: int = 0,
    seed: int = CHANNELS_SEED,
    n_bits: int = 32,
) -> List[ChannelReport]:
    """Bandwidth and BER per (channel, platform, noise) cell."""
    reports: List[ChannelReport] = []
    for channel in channels:
        for platform in platforms:
            for noise in noise_levels:
                reports.append(
                    run_channel(
                        channel,
                        noise=noise,
                        n_background=n_background,
                        platform=platform,
                        seed=seed,
                        n_bits=n_bits,
                    )
                )
    return reports


def render_channel_sweep(reports: Sequence[ChannelReport]) -> str:
    headers = [
        "channel", "platform", "noise", "bg", "bits", "BER",
        "parity", "conf", "bits/s", "digest",
    ]
    rows = [
        [
            r.channel,
            r.platform,
            f"{r.noise:g}",
            r.n_background,
            r.n_bits,
            f"{r.ber:.4f}",
            r.parity_errors,
            f"{r.confidence:.3f}",
            f"{r.bandwidth_bits_per_s:.1f}",
            r.digest[:12],
        ]
        for r in reports
    ]
    return "== covert-channel sweep ==\n" + format_table(headers, rows)


# ======================================================================
# CLI (``python -m repro channels ...``)
# ======================================================================
def cli_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro channels",
        description="covert-channel capacity on the multi-tenant arena",
    )
    parser.add_argument(
        "--channel",
        choices=CHANNEL_KINDS + ("both",),
        default="residency",
    )
    parser.add_argument(
        "--platform", choices=sorted(PLATFORMS), default="linux22"
    )
    parser.add_argument("--noise", type=float, default=0.0)
    parser.add_argument("--n-background", type=int, default=0)
    parser.add_argument("--bits", type=int, default=48)
    parser.add_argument("--seed", type=lambda s: int(s, 0), default=CHANNELS_SEED)
    parser.add_argument(
        "--sweep",
        action="store_true",
        help="full channel x platform x noise grid (ignores --channel etc.)",
    )
    parser.add_argument("--out", default=None, help="obs stream JSONL path")
    parser.add_argument("--report", default=None, help="report JSON path")
    args = parser.parse_args(argv)

    if args.sweep:
        reports = channel_sweep(
            n_background=args.n_background, seed=args.seed
        )
        print(render_channel_sweep(reports))
        if args.report:
            path = Path(args.report)
            if path.parent != Path(""):
                path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(
                    [r.to_json() for r in reports], indent=2, sort_keys=True
                )
                + "\n"
            )
            print(f"wrote sweep report to {path}")
        return 0

    channels = CHANNEL_KINDS if args.channel == "both" else (args.channel,)
    for channel in channels:
        out_path, report_path = args.out, args.report
        if len(channels) > 1:
            # One artifact per channel: suffix the stem.
            if out_path:
                p = Path(out_path)
                out_path = str(p.with_name(f"{p.stem}-{channel}{p.suffix}"))
            if report_path:
                p = Path(report_path)
                report_path = str(p.with_name(f"{p.stem}-{channel}{p.suffix}"))
        report = run_channel(
            channel,
            noise=args.noise,
            n_background=args.n_background,
            platform=args.platform,
            seed=args.seed,
            n_bits=args.bits,
            out_path=out_path,
            report_path=report_path,
        )
        print(report.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(cli_main())
