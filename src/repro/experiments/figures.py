"""Drivers that regenerate every figure of the paper's evaluation.

Each ``figN_*`` function is self-contained: it builds fresh kernels,
runs the workload at a scaled-down (but shape-preserving) size, and
returns a :class:`~repro.experiments.harness.FigureResult`.  Defaults
run the whole set in minutes; pass larger sizes for paper-scale runs.

Structurally, every driver splits into module-level *trial functions*
(pure, picklable, each building its own kernel) and a thin assembly
step.  The trials fan out over :mod:`repro.experiments.runner`, which
adds process-pool parallelism (``--jobs N`` on the CLI) and an on-disk
result cache; results are assembled in spec order, so ``jobs=1`` and
``jobs=N`` produce bit-identical rows.

Scaling convention: the paper's machine cached ~830 MB and scanned
1 GB files; the default scale here caches ~112 MB and scans files sized
in proportion, with 64 KiB simulator pages so page-table overheads stay
small.  All *shape* claims (who wins, crossovers, rough factors) are
preserved; see EXPERIMENTS.md for the paper-versus-measured record.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.fastsort import (
    RECORD_BYTES,
    fastsort_read_phase,
    fccd_fastsort_read_phase,
    gb_fastsort_read_phase,
    set_static_buffer_page,
    stdin_fastsort_read_phase,
)
from repro.apps.grep import gb_grep, gbp_grep, grep
from repro.apps.scan import gray_scan, linear_scan
from repro.apps.search import gb_search, search
from repro.experiments.harness import FigureResult, mean_std
from repro.experiments.runner import TrialSpec, run_trials
from repro.icl import gbp as gbp_mod
from repro.icl.fccd import FCCD
from repro.icl.fldc import FLDC
from repro.icl.mac import MAC
from repro.sim import Kernel, MachineConfig, PlatformSpec, linux22, netbsd15, solaris7
from repro.sim import syscalls as sc
from repro.sim.config import PLATFORMS
from repro.workloads.files import age_directory, create_files, make_file

KIB = 1024
MIB = 1024 * 1024


def scaled_config(
    page_size: int = 64 * KIB,
    memory_mb: int = 128,
    reserved_mb: int = 16,
    data_disks: int = 1,
) -> MachineConfig:
    """The default benchmark machine: ~112 MB of available memory."""
    return MachineConfig(
        page_size=page_size,
        memory_bytes=memory_mb * MIB,
        kernel_reserved_bytes=reserved_mb * MIB,
        data_disks=data_disks,
    )


def _build_file(kernel: Kernel, path: str, nbytes: int) -> None:
    kernel.run_process(make_file(path, nbytes), "setup")


def _repeat_scan(kernel: Kernel, factory, runs: int) -> List[int]:
    """Run a scan factory ``runs`` times; returns elapsed_ns per run."""
    times = []
    for _ in range(runs):
        report = kernel.run_process(factory(), "scan")
        times.append(report.elapsed_ns)
    return times


# ======================================================================
# Figure 1 — probe correlation vs prediction-unit size
# ======================================================================
def _fig1_trial(
    seed: int,
    *,
    config: MachineConfig,
    file_mb: int,
    au_mb: int,
    trial: int,
    prediction_units_mb: Sequence[int],
) -> Dict[str, float]:
    """One (access-unit, trial) cell: correlation per prediction unit."""
    from repro.toolbox.stats import pearson_correlation

    rng = random.Random(seed + 977 * trial + au_mb)
    kernel = Kernel(config)
    path = "/mnt0/fig1.dat"
    _build_file(kernel, path, file_mb * MIB)
    kernel.oracle.flush_file_cache()

    def access_program(au_bytes=au_mb * MIB, rng=rng):
        fd = (yield sc.open(path)).value
        size = (yield sc.fstat(fd)).value.size
        target = int(size * 1.5)
        done = 0
        while done < target:
            base = rng.randrange(max(size - au_bytes, 1))
            offset = base
            end = min(base + au_bytes, size)
            while offset < end:
                take = min(1 * MIB, end - offset)
                got = (yield sc.pread(fd, offset, take)).value.nbytes
                offset += take
                done += take
        yield sc.close(fd)

    kernel.run_process(access_program(), "access")
    cached = kernel.oracle.cached_file_pages(path)
    pages_per_file = (file_mb * MIB) // config.page_size
    correlations: Dict[str, float] = {}
    for pu_mb in prediction_units_mb:
        pages_per_pu = (pu_mb * MIB) // config.page_size
        xs: List[float] = []
        ys: List[float] = []
        for start in range(0, pages_per_file, pages_per_pu):
            unit_pages = range(start, min(start + pages_per_pu, pages_per_file))
            probe_page = rng.randrange(unit_pages.start, unit_pages.stop)
            xs.append(1.0 if probe_page in cached else 0.0)
            present = sum(1 for p in unit_pages if p in cached)
            ys.append(present / len(unit_pages))
        correlations[str(pu_mb)] = pearson_correlation(xs, ys)
    return correlations


def fig1_probe_correlation(
    trials: int = 5,
    file_mb: int = 224,
    access_units_mb: Sequence[int] = (2, 16, 64),
    prediction_units_mb: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    config: Optional[MachineConfig] = None,
    seed: int = 11,
) -> FigureResult:
    """Correlation between a probed page's presence and its unit's presence.

    A test program reads a file ~2x the cache size with a given access
    unit; ground truth (which pages are cached) then gives the Pearson
    correlation between "random page present" and "fraction of the
    prediction unit present", per prediction-unit size — Figure 1.
    """
    config = config or scaled_config()
    result = FigureResult(
        figure_id="fig1",
        title="Probe correlation vs prediction-unit size",
        columns=["access_unit_mb", "prediction_unit_mb", "corr_mean", "corr_std"],
        scale_note=f"file {file_mb} MB ~2x a {config.available_bytes // MIB} MB cache",
    )
    specs = [
        TrialSpec(
            experiment_id="fig1",
            trial_index=a * trials + trial,
            fn=_fig1_trial,
            params=dict(
                config=config,
                file_mb=file_mb,
                au_mb=au_mb,
                trial=trial,
                prediction_units_mb=tuple(prediction_units_mb),
            ),
            seed=seed,
        )
        for a, au_mb in enumerate(access_units_mb)
        for trial in range(trials)
    ]
    values = run_trials(specs)
    for a, au_mb in enumerate(access_units_mb):
        per_au = values[a * trials : (a + 1) * trials]
        for pu_mb in prediction_units_mb:
            mean, std = mean_std([v[str(pu_mb)] for v in per_au])
            result.add(
                access_unit_mb=au_mb,
                prediction_unit_mb=pu_mb,
                corr_mean=mean,
                corr_std=std,
            )
    result.notes.append(
        "correlation stays high while prediction unit <= access unit, "
        "then falls off (paper Figure 1)"
    )
    return result


# ======================================================================
# Figure 2 — single-file scan: linear vs gray-box vs models
# ======================================================================
def _fig2_constants_trial(seed: int, *, config: MachineConfig) -> Dict[str, float]:
    """Model constants measured once on a quiet machine (§5)."""
    from repro.toolbox.microbench import run_all

    kernel = Kernel(config)
    repo = run_all(kernel, file_bytes=64 * MIB)
    return {
        "disk_bw": repo.get("disk.sequential_bandwidth"),
        "copy_bw": repo.get("mem.copy_bandwidth"),
    }


def _fig2_scan_trial(
    seed: int,
    *,
    config: MachineConfig,
    size_mb: int,
    variant: str,
    warm_runs: int,
) -> float:
    """Warm-scan seconds for one (size, variant) point."""
    kernel = Kernel(config)
    path = "/mnt0/fig2.dat"
    _build_file(kernel, path, size_mb * MIB)
    kernel.oracle.flush_file_cache()
    rng = random.Random(seed + size_mb)
    if variant == "linear":
        factory = lambda: linear_scan(path)
    else:
        factory = lambda: gray_scan(path, FCCD(rng=rng))
    runs = _repeat_scan(kernel, factory, warm_runs + 1)
    warm = runs[1:]
    return sum(warm) / len(warm) / 1e9


def fig2_single_file_scan(
    sizes_mb: Sequence[int] = (32, 64, 96, 112, 128, 160, 192),
    warm_runs: int = 3,
    config: Optional[MachineConfig] = None,
    seed: int = 23,
) -> FigureResult:
    """Warm repeated scans of one file of varying size (Figure 2)."""
    config = config or scaled_config()
    cache_bytes = config.available_bytes
    specs = [
        TrialSpec(
            experiment_id="fig2",
            trial_index=0,
            fn=_fig2_constants_trial,
            params=dict(config=config),
            seed=seed,
        )
    ]
    for size_mb in sizes_mb:
        for variant in ("linear", "gray"):
            specs.append(
                TrialSpec(
                    experiment_id="fig2",
                    trial_index=len(specs),
                    fn=_fig2_scan_trial,
                    params=dict(
                        config=config,
                        size_mb=size_mb,
                        variant=variant,
                        warm_runs=warm_runs,
                    ),
                    seed=seed,
                )
            )
    values = run_trials(specs)
    constants = values[0]
    disk_bw = constants["disk_bw"]
    copy_bw = constants["copy_bw"]

    result = FigureResult(
        figure_id="fig2",
        title="Single-file scan: time vs file size (warm cache)",
        columns=[
            "size_mb",
            "linear_s",
            "gray_s",
            "model_worst_s",
            "model_ideal_s",
        ],
        scale_note=f"cache {cache_bytes // MIB} MB; sizes scaled from the paper's 896 MB machine",
    )
    for n, size_mb in enumerate(sizes_mb):
        nbytes = size_mb * MIB
        linear_s = values[1 + 2 * n]
        gray_s = values[2 + 2 * n]
        worst = nbytes / disk_bw
        ideal = max(nbytes - cache_bytes, 0) / disk_bw + min(nbytes, cache_bytes) / copy_bw
        result.add(
            size_mb=size_mb,
            linear_s=linear_s,
            gray_s=gray_s,
            model_worst_s=worst,
            model_ideal_s=ideal,
        )
    result.notes.append(
        "linear scan degrades to the worst-case model once the file "
        "exceeds the cache; the gray-box scan tracks the ideal model"
    )
    return result


# ======================================================================
# Figure 3 — application performance: grep and fastsort
# ======================================================================
def _fig3_grep_trial(
    seed: int,
    *,
    config: MachineConfig,
    variant: str,
    grep_files: int,
    grep_file_mb: int,
    warm_runs: int,
) -> float:
    """Mean warm grep seconds for one variant."""
    paths = [f"/mnt0/g/f{i:04d}" for i in range(grep_files)]
    kernel = Kernel(config)

    def setup():
        yield sc.mkdir("/mnt0/g")
        yield from create_files("/mnt0/g", grep_files, grep_file_mb * MIB)

    kernel.run_process(setup(), "setup")
    kernel.oracle.flush_file_cache()
    rng = random.Random(seed)
    if variant == "unmodified":
        factory = lambda: grep(paths)
    elif variant == "gb-grep":
        factory = lambda: gb_grep(paths, fccd=FCCD(rng=rng))
    else:
        factory = lambda: gbp_grep(paths, fccd=FCCD(rng=rng))
    times = []
    for run in range(warm_runs + 1):
        report = kernel.run_process(factory(), variant)
        times.append(report.elapsed_ns)
    warm = times[1:]
    return sum(warm) / len(warm) / 1e9


def _fig3_sort_trial(
    seed: int,
    *,
    config: MachineConfig,
    variant: str,
    sort_input_mb: int,
    sort_pass_mb: int,
    warm_runs: int,
) -> float:
    """Mean warm fastsort read-phase seconds for one variant."""
    set_static_buffer_page(config.page_size)
    input_path = "/mnt0/sortin.dat"
    input_bytes = sort_input_mb * MIB - (sort_input_mb * MIB) % RECORD_BYTES
    pass_bytes = sort_pass_mb * MIB - (sort_pass_mb * MIB) % RECORD_BYTES

    kernel = Kernel(config)

    def setup():
        yield sc.mkdir("/mnt0/runs")

    kernel.run_process(setup(), "setup")

    def refresh_input(run: int) -> None:
        """Refresh the file-cache contents before each run (§4.1.3).

        Models the paper's "pipeline of creating records and then
        sorting them": the input exists on disk (fsync'd) and one
        sequential pass leaves its tail hot in the cache — the classic
        partially-cached state in which an LRU-like cache punishes a
        sequential re-reader and rewards FCCD's cached-first order.
        """

        def recreate():
            if run == 0:
                yield from make_file(input_path, input_bytes, sync=True)
            report = yield from linear_scan(input_path)
            return report

        kernel.run_process(recreate(), "records")

    def clean_runs() -> None:
        def clean():
            names = (yield sc.readdir("/mnt0/runs")).value
            for name in names:
                yield sc.unlink(f"/mnt0/runs/{name}")

        kernel.run_process(clean(), "clean")

    rng = random.Random(seed + 1)
    times = []
    for run in range(warm_runs + 1):
        refresh_input(run)
        if variant == "unmodified":
            report = kernel.run_process(
                fastsort_read_phase(input_path, "/mnt0/runs", pass_bytes), variant
            )
            elapsed = report.read_ns
        elif variant == "gb-fastsort":
            report = kernel.run_process(
                fccd_fastsort_read_phase(
                    input_path, "/mnt0/runs", pass_bytes, FCCD(rng=rng)
                ),
                variant,
            )
            elapsed = report.read_ns
        else:
            elapsed = _run_gbp_sort_pipeline(
                kernel, input_path, "/mnt0/runs", pass_bytes, FCCD(rng=rng)
            )
        times.append(elapsed)
        clean_runs()
    warm = times[1:]
    return sum(warm) / len(warm) / 1e9


def fig3_applications(
    grep_files: int = 17,
    grep_file_mb: int = 8,
    sort_input_mb: int = 136,
    sort_pass_mb: int = 24,
    warm_runs: int = 2,
    config: Optional[MachineConfig] = None,
    seed: int = 37,
) -> FigureResult:
    """Normalized grep and fastsort times in three flavours (Figure 3)."""
    config = config or scaled_config()
    result = FigureResult(
        figure_id="fig3",
        title="Application performance (normalized to unmodified)",
        columns=["app", "variant", "time_s", "normalized"],
        scale_note=(
            f"grep: {grep_files}x{grep_file_mb} MB files; fastsort: "
            f"{sort_input_mb} MB input, {sort_pass_mb} MB passes; cache "
            f"{config.available_bytes // MIB} MB"
        ),
    )
    grep_variants = ("unmodified", "gb-grep", "gbp-grep")
    sort_variants = ("unmodified", "gb-fastsort", "gbp-fastsort")
    specs = [
        TrialSpec(
            experiment_id="fig3",
            trial_index=i,
            fn=_fig3_grep_trial,
            params=dict(
                config=config,
                variant=variant,
                grep_files=grep_files,
                grep_file_mb=grep_file_mb,
                warm_runs=warm_runs,
            ),
            seed=seed,
        )
        for i, variant in enumerate(grep_variants)
    ]
    specs.extend(
        TrialSpec(
            experiment_id="fig3",
            trial_index=len(grep_variants) + i,
            fn=_fig3_sort_trial,
            params=dict(
                config=config,
                variant=variant,
                sort_input_mb=sort_input_mb,
                sort_pass_mb=sort_pass_mb,
                warm_runs=warm_runs,
            ),
            seed=seed,
        )
        for i, variant in enumerate(sort_variants)
    )
    values = run_trials(specs)
    grep_times = dict(zip(grep_variants, values[: len(grep_variants)]))
    sort_times = dict(zip(sort_variants, values[len(grep_variants) :]))
    base = grep_times["unmodified"]
    for variant in grep_variants:
        result.add(
            app="grep",
            variant=variant,
            time_s=grep_times[variant],
            normalized=grep_times[variant] / base,
        )
    base = sort_times["unmodified"]
    for variant in sort_variants:
        result.add(
            app="fastsort",
            variant=variant,
            time_s=sort_times[variant],
            normalized=sort_times[variant] / base,
        )
    result.notes.append(
        "gb-grep ~3x faster than unmodified; gbp recovers most of the "
        "benefit; fastsort gains are smaller (memory contention with the "
        "heap and write buffering), as in the paper"
    )
    return result


def _run_gbp_sort_pipeline(
    kernel: Kernel, input_path: str, run_dir: str, pass_bytes: int, fccd: FCCD
) -> int:
    """Wire `gbp -mem -out input | fastsort` through a pipe; returns read_ns."""
    pipe = kernel.make_pipe()
    kernel.spawn_with_pipe_ends(
        lambda w_fd: gbp_mod.stream_file(input_path, w_fd, fccd, align=RECORD_BYTES),
        [(pipe, "pipe_w")],
        "gbp",
    )
    consumer = kernel.spawn_with_pipe_ends(
        lambda r_fd: stdin_fastsort_read_phase(r_fd, run_dir, pass_bytes),
        [(pipe, "pipe_r")],
        "sort",
    )
    kernel.run()
    return consumer.result.read_ns


# ======================================================================
# Figure 4 — multi-platform scans and searches
# ======================================================================
def _fig4_scan_trial(
    seed: int,
    *,
    config: MachineConfig,
    platform: str,
    file_mb: int,
    variant: str,
    warm_runs: int,
) -> List[int]:
    """All scan run times (ns) for one (platform, variant) pair."""
    spec = PLATFORMS[platform]
    kernel = Kernel(config, platform=spec)
    path = "/mnt0/scan.dat"
    _build_file(kernel, path, file_mb * MIB)
    kernel.oracle.flush_file_cache()
    rng = random.Random(seed)
    if variant == "warm":
        factory = lambda: linear_scan(path)
    else:
        factory = lambda: gray_scan(path, FCCD(rng=rng))
    return _repeat_scan(kernel, factory, warm_runs + 1)


def _fig4_search_kernel(
    config: MachineConfig,
    spec: PlatformSpec,
    paths: List[str],
    match_path: str,
    search_files: int,
    search_file_mb: int,
    warm: bool,
) -> Kernel:
    kernel = Kernel(config, platform=spec)

    def setup():
        yield sc.mkdir("/mnt0/s")
        yield from create_files("/mnt0/s", search_files, search_file_mb * MIB)

    kernel.run_process(setup(), "setup")
    kernel.oracle.flush_file_cache()
    if warm:
        # Warm exactly the match file (the paper configures the match
        # "located in a cached file specified last on the command-line").
        def warm_match():
            fd = (yield sc.open(match_path)).value
            while not (yield sc.read(fd, 1 * MIB)).value.eof:
                pass
            yield sc.close(fd)

        kernel.run_process(warm_match(), "warm")
    return kernel


def _fig4_search_trial(
    seed: int,
    *,
    config: MachineConfig,
    platform: str,
    variant: str,
    search_files: int,
    search_file_mb: int,
) -> int:
    """Elapsed ns of one search variant (cold / warm / gray)."""
    spec = PLATFORMS[platform]
    paths = [f"/mnt0/s/f{i:04d}" for i in range(search_files)]
    match_path = paths[-1]
    kernel = _fig4_search_kernel(
        config, spec, paths, match_path, search_files, search_file_mb,
        warm=variant != "cold",
    )
    if variant == "gray":
        rng = random.Random(seed + 5)
        return kernel.run_process(
            gb_search(paths, match_path=match_path, fccd=FCCD(rng=rng)), "gb-search"
        ).elapsed_ns
    return kernel.run_process(
        search(paths, match_path=match_path), "search"
    ).elapsed_ns


def fig4_multi_platform(
    scan_mb: Optional[Dict[str, int]] = None,
    search_files: int = 24,
    search_file_mb: int = 8,
    warm_runs: int = 2,
    config: Optional[MachineConfig] = None,
    seed: int = 41,
) -> FigureResult:
    """Cold/warm/gray scans and searches on all three personalities."""
    config = config or scaled_config()
    platforms: List[PlatformSpec] = [linux22, netbsd15, solaris7]
    # NetBSD's fixed buffer cache is 64 MB; its best-case scan file fits.
    scan_mb = scan_mb or {"linux22": 192, "netbsd15": 56, "solaris7": 192}
    result = FigureResult(
        figure_id="fig4",
        title="Multi-platform: scan and search, normalized to cold",
        columns=["platform", "benchmark", "cold", "warm", "gray"],
        scale_note="scan files sized per platform cache; search match cached, listed last",
    )
    search_variants = ("cold", "warm", "gray")
    specs: List[TrialSpec] = []
    for platform in platforms:
        for variant in ("warm", "gray"):
            specs.append(
                TrialSpec(
                    experiment_id="fig4",
                    trial_index=len(specs),
                    fn=_fig4_scan_trial,
                    params=dict(
                        config=config,
                        platform=platform.name,
                        file_mb=scan_mb[platform.name],
                        variant=variant,
                        warm_runs=warm_runs,
                    ),
                    seed=seed,
                )
            )
        for variant in search_variants:
            specs.append(
                TrialSpec(
                    experiment_id="fig4",
                    trial_index=len(specs),
                    fn=_fig4_search_trial,
                    params=dict(
                        config=config,
                        platform=platform.name,
                        variant=variant,
                        search_files=search_files,
                        search_file_mb=search_file_mb,
                    ),
                    seed=seed,
                )
            )
    values = run_trials(specs)
    per_platform = 2 + len(search_variants)  # 2 scan variants + 3 search
    for p, platform in enumerate(platforms):
        base = p * per_platform
        warm_scan_runs = values[base]
        gray_scan_runs = values[base + 1]
        cold_s = warm_scan_runs[0] / 1e9
        warm_s = sum(warm_scan_runs[1:]) / len(warm_scan_runs[1:]) / 1e9
        gray_s = sum(gray_scan_runs[1:]) / len(gray_scan_runs[1:]) / 1e9
        result.add(
            platform=platform.name,
            benchmark="scan",
            cold=1.0,
            warm=warm_s / cold_s,
            gray=gray_s / cold_s,
        )
        cold_ns, warm_ns, gray_ns = values[base + 2 : base + 5]
        result.add(
            platform=platform.name,
            benchmark="search",
            cold=1.0,
            warm=warm_ns / cold_ns,
            gray=gray_ns / cold_ns,
        )
    result.notes.append(
        "linux: warm scan ~ cold without gray-box help, fast with it; "
        "netbsd: file fitting its fixed cache is fast when warm; solaris: "
        "warm scans fast even unmodified (page-holding cache); search "
        "benefits on every platform (paper Figure 4)"
    )
    return result


# ======================================================================
# Figure 5 — file ordering matters (random / by-directory / by-inumber)
# ======================================================================
def _fig5_trial(
    seed: int,
    *,
    config: MachineConfig,
    platform: str,
    trial: int,
    files: int,
    file_kb: int,
    directories: int,
) -> Dict[str, float]:
    """One aged-directory read trial: seconds per ordering strategy."""
    spec = PLATFORMS[platform]
    per_dir = files // directories
    kernel = Kernel(config, platform=spec)
    paths: List[str] = []
    name_rng = random.Random(seed * 31 + trial)

    def setup():
        for d in range(directories):
            # Names deliberately uncorrelated with creation order.
            names = [f"n{name_rng.randrange(10**8):08d}" for _ in range(per_dir)]
            got = yield from _populate(f"/mnt0/d{d}", per_dir, file_kb * KIB, names)
            paths.extend(got)

    kernel.run_process(setup(), "setup")
    rng = random.Random(seed + trial)
    times: Dict[str, float] = {}
    for order_name in ("random", "directory", "inumber"):
        kernel.oracle.flush_file_cache()

        def run(order_name=order_name, rng=rng):
            if order_name == "random":
                order = list(paths)
                rng.shuffle(order)
            elif order_name == "directory":
                shuffled = list(paths)
                rng.shuffle(shuffled)
                order = FLDC.directory_order(shuffled)
            else:
                shuffled = list(paths)
                rng.shuffle(shuffled)
                order, _stats = yield from FLDC().layout_order(shuffled)
            t0 = (yield sc.gettime()).value
            for path in order:
                fd = (yield sc.open(path)).value
                while not (yield sc.read(fd, 64 * KIB)).value.eof:
                    pass
                yield sc.close(fd)
            return (yield sc.gettime()).value - t0

        times[order_name] = kernel.run_process(run(), order_name) / 1e9
    return times


def fig5_file_ordering(
    files: int = 200,
    file_kb: int = 8,
    directories: int = 2,
    trials: int = 3,
    config: Optional[MachineConfig] = None,
    seed: int = 53,
) -> FigureResult:
    """Total time to read many small files in three orders (Figure 5)."""
    config = config or scaled_config(page_size=4 * KIB)
    platforms = [linux22, netbsd15, solaris7]
    result = FigureResult(
        figure_id="fig5",
        title="File ordering matters (cold cache, seconds)",
        columns=["platform", "order", "time_s_mean", "time_s_std"],
        scale_note=f"{files}x{file_kb} KB files across {directories} directories",
    )
    specs = [
        TrialSpec(
            experiment_id="fig5",
            trial_index=p * trials + trial,
            fn=_fig5_trial,
            params=dict(
                config=config,
                platform=platform.name,
                trial=trial,
                files=files,
                file_kb=file_kb,
                directories=directories,
            ),
            seed=seed,
        )
        for p, platform in enumerate(platforms)
        for trial in range(trials)
    ]
    values = run_trials(specs)
    for p, platform in enumerate(platforms):
        per_trial = values[p * trials : (p + 1) * trials]
        for order_name in ("random", "directory", "inumber"):
            mean, std = mean_std([t[order_name] for t in per_trial])
            result.add(
                platform=platform.name,
                order=order_name,
                time_s_mean=mean,
                time_s_std=std,
            )
    result.notes.append(
        "directory sort beats random modestly; i-number sort wins by a "
        "large factor (paper: ~6x on linux/netbsd, >2x on solaris)"
    )
    return result


def _populate(directory: str, count: int, size: int, names=None):
    yield sc.mkdir(directory)
    got = yield from create_files(directory, count, size, names=names)
    return got


# ======================================================================
# Figure 6 — aging epochs and the directory refresh
# ======================================================================
def _fig6_trial(
    seed: int,
    *,
    config: MachineConfig,
    files: int,
    file_kb: int,
    epochs: int,
    refresh_at: int,
    measure_every: int,
) -> List[Dict[str, object]]:
    """The whole aging timeline (inherently sequential: one aging kernel)."""
    kernel = Kernel(config)
    directory = "/mnt0/aged"
    kernel.run_process(_populate(directory, files, file_kb * KIB), "setup")
    rng = random.Random(seed)
    rows: List[Dict[str, object]] = []

    def measure(order_name: str) -> float:
        kernel.oracle.flush_file_cache()

        def run():
            names = (yield sc.readdir(directory)).value
            paths = [f"{directory}/{n}" for n in names]
            if order_name == "random":
                order = list(paths)
                rng.shuffle(order)
            else:
                order, _stats = yield from FLDC().layout_order(paths)
            t0 = (yield sc.gettime()).value
            for path in order:
                fd = (yield sc.open(path)).value
                while not (yield sc.read(fd, 64 * KIB)).value.eof:
                    pass
                yield sc.close(fd)
            return (yield sc.gettime()).value - t0

        return kernel.run_process(run(), order_name) / 1e9

    rows.append(
        dict(epoch=0, random_s=measure("random"), inumber_s=measure("inumber"), refreshed=False)
    )
    for epoch in range(1, epochs + 1):
        if epoch == refresh_at:
            kernel.run_process(FLDC().refresh_directory(directory), "refresh")
            rows.append(
                dict(
                    epoch=epoch,
                    random_s=measure("random"),
                    inumber_s=measure("inumber"),
                    refreshed=True,
                )
            )
            continue
        kernel.run_process(
            age_directory(directory, 1, rng, create_size=file_kb * KIB), "age"
        )
        if epoch % measure_every == 0 or epoch == epochs:
            rows.append(
                dict(
                    epoch=epoch,
                    random_s=measure("random"),
                    inumber_s=measure("inumber"),
                    refreshed=False,
                )
            )
    return rows


def fig6_aging_refresh(
    files: int = 100,
    file_kb: int = 8,
    epochs: int = 31,
    refresh_at: int = 31,
    measure_every: int = 2,
    config: Optional[MachineConfig] = None,
    seed: int = 61,
) -> FigureResult:
    """i-number vs random order as the directory ages; refresh restores."""
    config = config or scaled_config(page_size=4 * KIB)
    result = FigureResult(
        figure_id="fig6",
        title="Aging and refresh: read time by epoch (seconds)",
        columns=["epoch", "random_s", "inumber_s", "refreshed"],
        scale_note=f"{files}x{file_kb} KB files; 5 deletes + 5 creates per epoch",
    )
    (rows,) = run_trials(
        [
            TrialSpec(
                experiment_id="fig6",
                trial_index=0,
                fn=_fig6_trial,
                params=dict(
                    config=config,
                    files=files,
                    file_kb=file_kb,
                    epochs=epochs,
                    refresh_at=refresh_at,
                    measure_every=measure_every,
                ),
                seed=seed,
            )
        ]
    )
    for row in rows:
        result.add(**row)
    result.notes.append(
        "i-number order degrades with aging yet stays ahead of random; "
        "the refresh at the final epoch restores fresh performance"
    )
    return result


# ======================================================================
# Figure 7 — four competing fastsorts, static pass sizes vs MAC
# ======================================================================
def _fig7_trial(
    seed: int,
    *,
    config: MachineConfig,
    variant: str,
    pass_mb: Optional[int],
    trial: int,
    nprocs: int,
    input_mb: int,
    min_pass_mb: int,
) -> List[float]:
    """One competing-sorts run: [elapsed_s, mean_pass_mb, overhead_s, swapped_mb]."""
    set_static_buffer_page(config.page_size)
    input_bytes = input_mb * MIB - (input_mb * MIB) % RECORD_BYTES

    kernel = Kernel(config)

    def setup(i: int):
        yield sc.mkdir(f"/mnt{i}/runs")
        yield from make_file(f"/mnt{i}/in.dat", input_bytes, sync=False)

    for i in range(nprocs):
        kernel.run_process(setup(i), f"setup{i}")
    kernel.oracle.flush_file_cache()

    def staggered(gen, delay_ns: int):
        yield sc.sleep(delay_ns)
        report = yield from gen
        return report

    rng = random.Random(seed * 101 + trial)
    swapped_before = kernel.oracle.daemon_stats().anon_pages_swapped
    start = kernel.clock.now
    processes = []
    for i in range(nprocs):
        if variant == "static":
            pass_bytes = pass_mb * MIB - (pass_mb * MIB) % RECORD_BYTES
            gen = fastsort_read_phase(f"/mnt{i}/in.dat", f"/mnt{i}/runs", pass_bytes)
        else:
            mac = MAC(
                page_size=config.page_size,
                initial_increment_bytes=8 * MIB,
                max_increment_bytes=64 * MIB,
                rng=random.Random(seed + i + 31 * trial),
            )
            gen = gb_fastsort_read_phase(
                f"/mnt{i}/in.dat",
                f"/mnt{i}/runs",
                mac,
                min_pass_bytes=min_pass_mb * MIB,
            )
        delay = rng.randrange(10_000_000)  # up to 10 ms shell skew
        processes.append(kernel.spawn(staggered(gen, delay), f"sort{i}"))
    kernel.run()
    elapsed = (kernel.clock.now - start) / 1e9
    reports = [p.result for p in processes]
    mean_pass = sum(r.mean_pass_bytes for r in reports) / len(reports) / MIB
    overhead = sum(r.overhead_ns for r in reports) / len(reports) / 1e9
    swapped = kernel.oracle.daemon_stats().anon_pages_swapped - swapped_before
    swapped_mb = swapped * config.page_size / MIB
    return [elapsed, mean_pass, overhead, swapped_mb]


def fig7_sort_mac(
    nprocs: int = 4,
    input_mb: int = 240,
    static_pass_mb: Sequence[int] = (50, 60, 75, 90, 110, 130),
    min_pass_mb: int = 50,
    memory_mb: int = 448,
    reserved_mb: int = 32,
    trials: int = 2,
    config: Optional[MachineConfig] = None,
    seed: int = 71,
) -> FigureResult:
    """Four concurrent sort read phases: pass-size sweep vs gb-fastsort.

    Each trial staggers the processes' start times a little (as real
    shells would); trials are averaged to smooth the chaotic thrash
    interleavings that dominate the overcommitted configurations.
    """
    config = config or MachineConfig(
        page_size=64 * KIB,
        memory_bytes=memory_mb * MIB,
        kernel_reserved_bytes=reserved_mb * MIB,
        data_disks=nprocs,
    )
    result = FigureResult(
        figure_id="fig7",
        title="Competing fastsorts: completion time vs pass size (seconds)",
        columns=[
            "variant",
            "pass_mb",
            "time_s",
            "time_s_std",
            "mean_pass_mb",
            "overhead_s",
            "swapped_mb",
        ],
        scale_note=(
            f"{nprocs} sorts x {input_mb} MB, own data disks, shared swap "
            f"disk, {config.available_bytes // MIB} MB available"
        ),
    )
    configs: List[Tuple[str, Optional[int]]] = [
        ("static", pass_mb) for pass_mb in static_pass_mb
    ]
    configs.append(("mac", None))
    specs = [
        TrialSpec(
            experiment_id="fig7",
            trial_index=c * trials + trial,
            fn=_fig7_trial,
            params=dict(
                config=config,
                variant=variant,
                pass_mb=pass_mb,
                trial=trial,
                nprocs=nprocs,
                input_mb=input_mb,
                min_pass_mb=min_pass_mb,
            ),
            seed=seed,
        )
        for c, (variant, pass_mb) in enumerate(configs)
        for trial in range(trials)
    ]
    values = run_trials(specs)
    for c, (variant, pass_mb) in enumerate(configs):
        rows = values[c * trials : (c + 1) * trials]
        times = [r[0] for r in rows]
        mean_t, std_t = mean_std(times)
        result.add(
            variant="static" if variant == "static" else "gb-fastsort",
            pass_mb=pass_mb if pass_mb is not None else 0,
            time_s=mean_t,
            time_s_std=std_t,
            mean_pass_mb=sum(r[1] for r in rows) / trials,
            overhead_s=sum(r[2] for r in rows) / trials,
            swapped_mb=sum(r[3] for r in rows) / trials,
        )
    result.notes.append(
        "static sorts degrade sharply once the pass size overcommits "
        "memory; gb-fastsort adapts its pass size and pays probe/wait "
        "overhead instead (the paper measured it 54% over the best "
        "static).  Its residual swap traffic comes from the probing "
        "itself, not the sort's read/sort/write work."
    )
    return result


# ======================================================================
# §4.3.3 text — MAC returns (available - x) against a competitor
# ======================================================================
def _mac_available_trial(
    seed: int, *, config: MachineConfig, competitor_mb: int
) -> float:
    """MAC's granted bytes with a competitor pinning ``competitor_mb``."""
    ps = config.page_size
    x = competitor_mb
    kernel = Kernel(config)

    def competitor(stop_after_ns=40 * 10**9, xmb=x):
        if xmb == 0:
            return None
        region = (yield sc.vm_alloc(xmb * MIB)).value
        npages = xmb * MIB // ps
        yield sc.touch_range(region, 0, npages)
        t0 = (yield sc.gettime()).value
        while True:
            yield sc.touch_range(region, 0, npages)
            yield sc.sleep(50 * 10**6)
            if (yield sc.gettime()).value - t0 > stop_after_ns:
                return None

    def mac_app():
        yield sc.sleep(500 * 10**6)
        mac = MAC(
            page_size=ps,
            initial_increment_bytes=8 * MIB,
            max_increment_bytes=64 * MIB,
            rng=random.Random(seed + x),
        )
        allocation = yield from mac.gb_alloc(8 * MIB, config.available_bytes, MIB)
        granted = 0 if allocation is None else allocation.granted_bytes
        if allocation is not None:
            yield from mac.gb_free(allocation)
        return granted

    kernel.spawn(competitor(), "competitor")
    proc = kernel.spawn(mac_app(), "mac")
    kernel.run()
    return proc.result


def mac_available_memory(
    competitor_mb: Sequence[int] = (0, 150, 300, 500),
    memory_mb: int = 896,
    reserved_mb: int = 66,
    config: Optional[MachineConfig] = None,
    seed: int = 83,
) -> FigureResult:
    """MAC's grant vs a competitor holding x MB (§4.3.3's (830-x) claim)."""
    config = config or MachineConfig(
        page_size=64 * KIB,
        memory_bytes=memory_mb * MIB,
        kernel_reserved_bytes=reserved_mb * MIB,
        data_disks=1,
    )
    available = config.available_bytes // MIB
    result = FigureResult(
        figure_id="mac-text",
        title="MAC grant vs competitor footprint (MB)",
        columns=["competitor_mb", "expected_mb", "granted_mb"],
        scale_note=f"{available} MB available",
    )
    specs = [
        TrialSpec(
            experiment_id="mac-available",
            trial_index=i,
            fn=_mac_available_trial,
            params=dict(config=config, competitor_mb=x),
            seed=seed,
        )
        for i, x in enumerate(competitor_mb)
    ]
    values = run_trials(specs)
    for x, granted in zip(competitor_mb, values):
        result.add(
            competitor_mb=x,
            expected_mb=available - x,
            granted_mb=granted / MIB,
        )
    result.notes.append(
        "the grant tracks (available - x) with a small conservative margin"
    )
    return result
