"""Regenerate Tables 1 and 2 from the implementations' technique registries.

Unlike the figures, these tables are qualitative; rather than hard-code
prose, each row is read out of the live :class:`TechniqueProfile` of the
corresponding implementation, and Table 1 additionally runs the three
prior-system mini-simulations so the claimed behaviours are demonstrated,
not just asserted.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.harness import FigureResult
from repro.icl.base import TechniqueProfile
from repro.icl.fccd import FCCD
from repro.icl.fldc import FLDC
from repro.icl.mac import MAC
from repro.related import (
    PRIOR_SYSTEMS,
    simulate_coscheduling,
    simulate_manners,
    simulate_tcp,
)
from repro.related.tcp import NetworkPath


def _profile_table(
    figure_id: str, title: str, profiles: Dict[str, TechniqueProfile]
) -> FigureResult:
    names = list(profiles)
    result = FigureResult(
        figure_id=figure_id,
        title=title,
        columns=["technique"] + names,
    )
    for row_index, row_title in enumerate(TechniqueProfile.ROW_TITLES):
        cells = {"technique": row_title}
        for name in names:
            cells[name] = profiles[name].rows()[row_index]
        result.add(**cells)
    return result


def table1_prior_systems(run_demos: bool = True) -> FigureResult:
    """Table 1: gray-box techniques used in existing systems."""
    result = _profile_table(
        "table1",
        "Gray-box techniques in existing systems",
        dict(PRIOR_SYSTEMS),
    )
    if run_demos:
        wired = simulate_tcp(NetworkPath())
        wireless = simulate_tcp(NetworkPath(wireless_loss_rate=0.02))
        result.notes.append(
            f"TCP demo: wired goodput {wired.goodput:.1f} pkt/RTT vs "
            f"wireless {wireless.goodput:.1f} (mislabeled gray-box "
            f"knowledge collapses throughput)"
        )
        implicit = simulate_coscheduling(policy="implicit")
        block = simulate_coscheduling(policy="block")
        result.notes.append(
            f"coscheduling demo: implicit slowdown {implicit.slowdown:.2f} "
            f"vs naive blocking {block.slowdown:.2f}"
        )
        governed = simulate_manners(governed=True)
        ungoverned = simulate_manners(governed=False)
        result.notes.append(
            f"MS Manners demo: interference with foreground "
            f"{governed.interference_fraction:.2f} governed vs "
            f"{ungoverned.interference_fraction:.2f} ungoverned"
        )
    return result


def table2_case_studies() -> FigureResult:
    """Table 2: gray-box techniques used in the paper's three ICLs."""
    return _profile_table(
        "table2",
        "Gray-box techniques in the case studies",
        {
            "FCCD": FCCD.profile,
            "FLDC": FLDC.profile,
            "MAC": MAC.profile,
        },
    )
