"""Experiment harness: one driver per figure/table of the paper.

Each driver in :mod:`repro.experiments.figures` builds fresh kernels,
runs the workload, and returns a :class:`repro.experiments.harness.FigureResult`
whose rows mirror the series the paper plots.  The benchmark suite under
``benchmarks/`` is a thin wrapper that runs these drivers and prints the
tables; EXPERIMENTS.md records paper-versus-measured for each.
"""

from repro.experiments.harness import FigureResult, format_table, mean_std

__all__ = ["FigureResult", "format_table", "mean_std"]
