"""Ablation studies for the design choices the paper argues for.

Each driver isolates one decision (§4.1.2, §4.2.5, §4.3.2) and measures
the alternative the paper rejected, so the rationale in the text becomes
a regression-checked experiment:

* random vs fixed probe placement (stale probes masquerade as hits);
* sort-by-probe-time vs a fixed hit/miss threshold (mis-calibration);
* MAC's conservative increment schedule vs fixed and aggressive ones;
* directory-refresh cadence (never / periodic / on-degradation).

As in :mod:`repro.experiments.figures`, each driver is a thin assembly
over module-level trial functions dispatched through
:mod:`repro.experiments.runner`, so ablation sweeps parallelise and
cache like the figures do.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.experiments.figures import scaled_config
from repro.experiments.harness import FigureResult
from repro.experiments.runner import TrialSpec, run_trials
from repro.icl.fccd import FCCD
from repro.icl.fldc import FLDC
from repro.icl.mac import MAC
from repro.sim import Kernel, MachineConfig, syscalls as sc
from repro.sim.fs.lfs import LogStructuredFS
from repro.workloads.files import age_directory, create_files, make_file

KIB = 1024
MIB = 1024 * 1024


# ======================================================================
# Probe placement: random (paper) vs fixed offsets
# ======================================================================
def _probe_placement_trial(
    seed: int, *, config: MachineConfig, file_mb: int, placement: str
) -> Dict[str, float]:
    """Second prober's verdict after a stale first probe, one placement."""
    kernel = Kernel(config)
    kernel.run_process(make_file("/mnt0/f", file_mb * MIB), "setup")
    kernel.oracle.flush_file_cache()

    def make_layer(offset_seed):
        return FCCD(
            rng=random.Random(offset_seed),
            access_unit_bytes=8 * MIB,
            prediction_unit_bytes=2 * MIB,
            probe_placement=placement,
        )

    def probe(layer):
        def app():
            return (yield from layer.plan_file("/mnt0/f"))

        return kernel.run_process(app(), "probe")

    probe(make_layer(seed))             # the process that "terminates"
    plan = probe(make_layer(seed + 1))  # the victim prober
    predicted = sum(1 for s in plan.segments if s.mean_probe_ns < 1_000_000)
    return {
        "segments": len(plan.segments),
        "predicted_cached": predicted,
        "truly_cached_fraction": kernel.oracle.cached_fraction("/mnt0/f"),
    }


def ablation_probe_placement(
    file_mb: int = 64,
    config: Optional[MachineConfig] = None,
    seed: int = 97,
) -> FigureResult:
    """§4.1.2's failure story, measured.

    A process probes a cold file and exits before accessing it (or two
    processes probe nearly simultaneously).  A second prober with
    *fixed* offsets lands exactly on the pages the first probe dragged
    in and concludes the whole file is cached; random placement is
    immune.
    """
    config = config or scaled_config()
    result = FigureResult(
        figure_id="ablation-probe-placement",
        title="Second prober's verdicts after a stale first probe",
        columns=[
            "placement",
            "segments",
            "predicted_cached",
            "truly_cached_fraction",
        ],
        scale_note=f"{file_mb} MB cold file; first prober exits before accessing",
    )
    placements = ("fixed", "random")
    specs = [
        TrialSpec(
            experiment_id="ablation-probe-placement",
            trial_index=i,
            fn=_probe_placement_trial,
            params=dict(config=config, file_mb=file_mb, placement=placement),
            seed=seed,
        )
        for i, placement in enumerate(placements)
    ]
    values = run_trials(specs)
    for placement, verdict in zip(placements, values):
        result.add(
            placement=placement,
            segments=verdict["segments"],
            predicted_cached=verdict["predicted_cached"],
            truly_cached_fraction=verdict["truly_cached_fraction"],
        )
    result.notes.append(
        "fixed offsets report the file cached after a stale probe; random "
        "offsets stay honest (the paper's rationale for random placement)"
    )
    return result


# ======================================================================
# Differentiation: sort-by-probe-time (paper) vs fixed threshold
# ======================================================================
def _threshold_trial(
    seed: int,
    *,
    config: MachineConfig,
    file_mb: int,
    cached_mb: int,
    strategy: str,
    threshold_ns: Optional[int],
) -> float:
    """Scan seconds for one differentiation strategy."""
    kernel = Kernel(config)
    kernel.run_process(make_file("/mnt0/f", file_mb * MIB), "setup")
    kernel.oracle.flush_file_cache()

    def warm():
        fd = (yield sc.open("/mnt0/f")).value
        yield sc.pread(fd, (file_mb - cached_mb) * MIB, cached_mb * MIB)
        yield sc.close(fd)

    kernel.run_process(warm(), "warm")
    layer = FCCD(
        rng=random.Random(seed), access_unit_bytes=8 * MIB,
        prediction_unit_bytes=2 * MIB,
    )

    def sort_order(segments):
        return sorted(segments, key=lambda s: (s.probe_ns, s.offset))

    def threshold_order(segments):
        cached = [s for s in segments if s.mean_probe_ns <= threshold_ns]
        cold = [s for s in segments if s.mean_probe_ns > threshold_ns]
        return sorted(cached, key=lambda s: s.offset) + sorted(
            cold, key=lambda s: s.offset
        )

    order_key = sort_order if strategy == "sort" else threshold_order

    def app():
        fd = (yield sc.open("/mnt0/f")).value
        size = (yield sc.fstat(fd)).value.size
        segments = yield from layer.probe_fd(fd, size)
        t0 = (yield sc.gettime()).value
        for segment in order_key(segments):
            offset = segment.offset
            end = segment.offset + segment.length
            while offset < end:
                take = min(MIB, end - offset)
                offset += (yield sc.pread(fd, offset, take)).value.nbytes
        elapsed = (yield sc.gettime()).value - t0
        yield sc.close(fd)
        return elapsed

    return kernel.run_process(app(), "scan") / 1e9


def ablation_threshold_vs_sort(
    file_mb: int = 160,
    cached_mb: int = 60,
    config: Optional[MachineConfig] = None,
    seed: int = 101,
) -> FigureResult:
    """Why FCCD sorts instead of thresholding (§4.1.2).

    A threshold needs per-platform calibration; a value carried over
    from a faster storage stack classifies everything as on-disk and
    the re-ordering degenerates to sequential order.  Sorting needs no
    calibration at all.
    """
    config = config or scaled_config()
    result = FigureResult(
        figure_id="ablation-threshold",
        title="Scan time by differentiation strategy (seconds)",
        columns=["strategy", "scan_s", "needs_calibration"],
        scale_note=f"{file_mb} MB file, {cached_mb} MB tail cached",
    )
    rows = [
        ("sort (no threshold)", "sort", None, False),
        # Calibrated correctly for this machine: between copy and disk.
        ("threshold, calibrated", "threshold", 500_000, True),
        # Carried over from a machine with much faster storage: every
        # probe looks "slow", nothing is predicted cached.
        ("threshold, miscalibrated", "threshold", 500, True),
    ]
    specs = [
        TrialSpec(
            experiment_id="ablation-threshold",
            trial_index=i,
            fn=_threshold_trial,
            params=dict(
                config=config,
                file_mb=file_mb,
                cached_mb=cached_mb,
                strategy=strategy,
                threshold_ns=threshold_ns,
            ),
            seed=seed,
        )
        for i, (_label, strategy, threshold_ns, _cal) in enumerate(rows)
    ]
    values = run_trials(specs)
    for (label, _strategy, _threshold_ns, needs_cal), scan_s in zip(rows, values):
        result.add(
            strategy=label,
            scan_s=scan_s,
            needs_calibration=needs_cal,
        )
    result.notes.append(
        "sorting matches a correctly calibrated threshold with zero "
        "configuration; a stale threshold forfeits the entire benefit"
    )
    return result


# ======================================================================
# MAC increment schedule
# ======================================================================
def _mac_increment_trial(
    seed: int, *, config: MachineConfig, competitor_mb: int, policy: str
) -> Dict[str, float]:
    """gb_alloc cost under one increment policy, against a live competitor."""
    available = config.available_bytes
    kernel = Kernel(config)
    ps = config.page_size

    def competitor():
        region = (yield sc.vm_alloc(competitor_mb * MIB)).value
        npages = competitor_mb * MIB // ps
        yield sc.touch_range(region, 0, npages)
        t0 = (yield sc.gettime()).value
        while (yield sc.gettime()).value - t0 < 120 * 10**9:
            yield sc.touch_range(region, 0, npages)
            yield sc.sleep(30_000_000)

    mac = MAC(
        page_size=ps,
        initial_increment_bytes=4 * MIB,
        max_increment_bytes=32 * MIB,
        increment_policy=policy,
        rng=random.Random(seed),
    )

    def mac_app():
        yield sc.sleep(400_000_000)
        t0 = (yield sc.gettime()).value
        allocation = yield from mac.gb_alloc(4 * MIB, available, MIB)
        elapsed = (yield sc.gettime()).value - t0
        granted = 0 if allocation is None else allocation.granted_bytes
        if allocation is not None:
            yield from mac.gb_free(allocation)
        return granted, elapsed

    kernel.spawn(competitor(), "competitor")
    proc = kernel.spawn(mac_app(), "mac")
    kernel.run()
    granted, elapsed = proc.result
    swapped = kernel.oracle.daemon_stats().anon_pages_swapped
    return {
        "granted_mb": granted / MIB,
        "probe_touches": mac.stats.probe_touches,
        "alloc_s": elapsed / 1e9,
        "swapped_mb": swapped * ps / MIB,
    }


def ablation_mac_increment(
    config: Optional[MachineConfig] = None,
    competitor_mb: int = 40,
    seed: int = 103,
) -> FigureResult:
    """§4.3.2's schedule vs a fixed increment and an aggressive one."""
    config = config or MachineConfig(
        page_size=64 * KIB,
        memory_bytes=160 * MIB,
        kernel_reserved_bytes=16 * MIB,
        data_disks=1,
    )
    available = config.available_bytes
    result = FigureResult(
        figure_id="ablation-mac-increment",
        title="gb_alloc cost by increment policy",
        columns=[
            "policy",
            "granted_mb",
            "probe_touches",
            "alloc_s",
            "swapped_mb",
        ],
        scale_note=(
            f"{available // MIB} MB available, active competitor holding "
            f"{competitor_mb} MB"
        ),
    )
    policies = ("paper", "fixed", "aggressive")
    specs = [
        TrialSpec(
            experiment_id="ablation-mac-increment",
            trial_index=i,
            fn=_mac_increment_trial,
            params=dict(config=config, competitor_mb=competitor_mb, policy=policy),
            seed=seed,
        )
        for i, policy in enumerate(policies)
    ]
    values = run_trials(specs)
    for policy, row in zip(policies, values):
        result.add(
            policy=policy,
            granted_mb=row["granted_mb"],
            probe_touches=row["probe_touches"],
            alloc_s=row["alloc_s"],
            swapped_mb=row["swapped_mb"],
        )
    result.notes.append(
        "all policies find roughly the same available memory; the fixed "
        "increment pays far more probing (O(n^2) over many small chunks), "
        "the aggressive one causes more paging on the way up"
    )
    return result


# ======================================================================
# Directory refresh cadence
# ======================================================================
def _refresh_policy_trial(
    seed: int,
    *,
    config: MachineConfig,
    files: int,
    epochs: int,
    period: int,
    degradation_factor: float,
    policy: str,
) -> Dict[str, float]:
    """Total reader/refresh cost over the aging timeline for one policy."""
    kernel = Kernel(config)
    directory = "/mnt0/d"

    def setup():
        yield sc.mkdir(directory)
        yield from create_files(directory, files, 8 * KIB)

    kernel.run_process(setup(), "setup")
    rng = random.Random(seed)
    fldc = FLDC()
    read_total = 0.0
    refresh_total = 0.0
    refreshes = 0
    best = None
    for epoch in range(epochs):
        kernel.run_process(
            age_directory(directory, 1, rng, create_size=8 * KIB), "age"
        )
        kernel.oracle.flush_file_cache()

        def sweep():
            names = (yield sc.readdir(directory)).value
            order, _stats = yield from fldc.layout_order(
                [f"{directory}/{n}" for n in names]
            )
            t0 = (yield sc.gettime()).value
            for path in order:
                fd = (yield sc.open(path)).value
                while not (yield sc.read(fd, 64 * KIB)).value.eof:
                    pass
                yield sc.close(fd)
            return (yield sc.gettime()).value - t0

        elapsed = kernel.run_process(sweep(), "sweep") / 1e9
        read_total += elapsed
        best = elapsed if best is None else min(best, elapsed)

        due = (
            policy == "periodic" and (epoch + 1) % period == 0
        ) or (
            policy == "on-degradation" and elapsed > degradation_factor * best
        )
        if due:
            def refresh():
                t0 = (yield sc.gettime()).value
                yield from fldc.refresh_directory(directory)
                return (yield sc.gettime()).value - t0

            refresh_total += kernel.run_process(refresh(), "refresh") / 1e9
            refreshes += 1
    return {
        "read_s_total": read_total,
        "refreshes": refreshes,
        "refresh_s_total": refresh_total,
    }


def ablation_refresh_policy(
    files: int = 80,
    epochs: int = 40,
    period: int = 10,
    degradation_factor: float = 2.0,
    config: Optional[MachineConfig] = None,
    seed: int = 107,
) -> FigureResult:
    """How often to refresh (§4.2.5's open question), measured.

    A reader sweeps the directory in i-number order once per epoch while
    churn ages it.  Policies: never refresh; refresh every ``period``
    epochs; refresh when the tracked read time exceeds
    ``degradation_factor`` x the best seen (the paper's 'historical
    tracking' suggestion).
    """
    config = config or scaled_config(page_size=4 * KIB)
    result = FigureResult(
        figure_id="ablation-refresh-policy",
        title="Total reader time over aging epochs, by refresh policy",
        columns=["policy", "read_s_total", "refreshes", "refresh_s_total"],
        scale_note=f"{files} files, {epochs} epochs, 5+5 churn per epoch",
    )
    policies = ("never", "periodic", "on-degradation")
    specs = [
        TrialSpec(
            experiment_id="ablation-refresh-policy",
            trial_index=i,
            fn=_refresh_policy_trial,
            params=dict(
                config=config,
                files=files,
                epochs=epochs,
                period=period,
                degradation_factor=degradation_factor,
                policy=policy,
            ),
            seed=seed,
        )
        for i, policy in enumerate(policies)
    ]
    values = run_trials(specs)
    for policy, row in zip(policies, values):
        result.add(
            policy=policy,
            read_s_total=row["read_s_total"],
            refreshes=row["refreshes"],
            refresh_s_total=row["refresh_s_total"],
        )
    result.notes.append(
        "never refreshing pays compounding read degradation; both "
        "refresh policies recover it for a small copy cost, with "
        "on-degradation triggering only when needed"
    )
    return result


# ======================================================================
# §4.2.5 extension: FLDC's knowledge module on a log-structured FS
# ======================================================================
SECOND = 1_000_000_000


def _lfs_ordering_trial(seed: int, *, files: int) -> Dict[str, float]:
    """Read seconds per ordering on one aged LFS image (shared kernel)."""
    config = scaled_config(page_size=4 * KIB)
    kernel = Kernel(config, fs_class=LogStructuredFS)
    paths = [f"/mnt0/f{i:03d}" for i in range(files)]

    def create_all():
        for path in paths:
            yield from make_file(path, 16 * KIB, sync=False)

    kernel.run_process(create_all(), "create")

    # Rewrite everything in a shuffled order, seconds apart: on LFS the
    # rewrite order becomes the layout order.
    rewrite_order = list(paths)
    random.Random(seed).shuffle(rewrite_order)
    for path in rewrite_order:
        kernel.oracle.advance_time(2 * SECOND)

        def rewrite(path=path):
            fd = (yield sc.open(path)).value
            yield sc.pwrite(fd, 0, 16 * KIB)
            yield sc.close(fd)

        kernel.run_process(rewrite(), "rewrite")

    fldc = FLDC()

    def read_with(order_fn) -> float:
        def app():
            order, _stats = yield from order_fn(paths)
            t0 = (yield sc.gettime()).value
            for path in order:
                fd = (yield sc.open(path)).value
                while not (yield sc.read(fd, 64 * KIB)).value.eof:
                    pass
                yield sc.close(fd)
            return (yield sc.gettime()).value - t0

        kernel.oracle.flush_file_cache()
        return kernel.run_process(app(), "read") / 1e9

    def random_gen(paths_in):
        """Generator-shaped like the FLDC orderings, but shuffles."""
        shuffled = list(paths_in)
        random.Random(seed + 1).shuffle(shuffled)
        return shuffled, None
        yield  # unreachable; makes this a generator for `yield from`

    return {
        "random": read_with(random_gen),
        "inumber": read_with(fldc.layout_order),
        "write_time": read_with(fldc.write_time_order),
    }


def lfs_ordering_experiment(files: int = 60, seed: int = 109) -> FigureResult:
    result = FigureResult(
        figure_id="extension-lfs",
        title="FLDC knowledge modules on a log-structured filesystem",
        columns=["ordering", "read_s"],
        scale_note=f"{files} files rewritten in random order on LFS",
    )
    (times,) = run_trials(
        [
            TrialSpec(
                experiment_id="extension-lfs",
                trial_index=0,
                fn=_lfs_ordering_trial,
                params=dict(files=files),
                seed=seed,
            )
        ]
    )
    result.add(ordering="random", read_s=times["random"])
    result.add(ordering="i-number (FFS knowledge)", read_s=times["inumber"])
    result.add(ordering="write-time (LFS knowledge)", read_s=times["write_time"])
    result.notes.append(
        "the FFS module's i-number ordering is no better than random on "
        "LFS; swapping in the write-time module restores the win"
    )
    return result
