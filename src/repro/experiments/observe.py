"""``repro observe`` — run one instrumented scenario and dump its telemetry.

Where the figure drivers ask *does the reproduction match the paper*,
this driver asks *what did the layers actually do*: it runs a small,
fixed workload with the kernel's always-on observability wired into the
ICL under test, then exports every metric sample, event, and span as
JSONL (plus human-readable summaries).

The scenarios are chosen so inference phases and kernel activity
overlap on the simulated timeline:

* ``scan`` — FCCD probes a file larger than the cache, so probe misses
  force reclaim: ``fccd.probe_batch`` spans enclose ``kernel.reclaim``
  events.  This is the join the acceptance test checks.
* ``fldc`` — FLDC stats and refreshes an aged directory:
  ``fldc.stat_batch`` (vectored) or ``fldc.stat_sweep`` (sequential)
  plus ``fldc.refresh`` spans over syscall latency histograms.
* ``mac`` — MAC grows an allocation against a competitor:
  ``mac.gb_alloc`` / ``mac.alloc_round`` spans against fault counters
  and reclaim events.
* ``contention`` — two FCCD clients share one kernel, each probing its
  own cache-sized file, so every probe miss evicts the *other* client's
  pages.  Attribution splits the interleaved stream back into per-client
  views and the report prints the who-evicted-whom interference matrix
  (:mod:`repro.obs.views`) — the paper's probe-perturbation tension as
  a table.

Any scenario can also be exported as a Perfetto-loadable Chrome trace
(``--chrome-trace out.json``, :mod:`repro.obs.chrome`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.icl.fccd import FCCD
from repro.icl.fldc import FLDC
from repro.icl.mac import MAC
from repro.obs.export import (
    summarize_events,
    summarize_metrics,
    summarize_pids,
    write_jsonl,
)
from repro.obs.views import interference_matrix, process_names, render_matrix
from repro.sim import Kernel, MachineConfig
from repro.sim import syscalls as sc
from repro.workloads.files import age_directory, create_files, make_file

KIB = 1024
MIB = 1024 * 1024

SCENARIOS = ("scan", "fldc", "mac", "contention")

OBSERVE_SEED = 0x0B5E12


def observe_config(memory_mb: int = 48) -> MachineConfig:
    """A small machine so scenarios finish in seconds."""
    return MachineConfig(
        page_size=64 * KIB,
        memory_bytes=memory_mb * MIB,
        kernel_reserved_bytes=16 * MIB,
        data_disks=1,
    )


@dataclass
class ObserveReport:
    """One observed scenario: its records plus rendered summaries."""

    scenario: str
    records: List[Dict[str, Any]] = field(default_factory=list)
    out_path: Optional[str] = None
    chrome_path: Optional[str] = None
    result: Any = None

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        return [
            r
            for r in self.records
            if r.get("type") == "span" and (name is None or r.get("name") == name)
        ]

    def events(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        return [
            r
            for r in self.records
            if r.get("type") == "event" and (name is None or r.get("name") == name)
        ]

    def metrics(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("type") == "metric"]

    def events_within(self, span: Dict[str, Any], name: str) -> List[Dict[str, Any]]:
        """Events named ``name`` inside the span's simulated-time window."""
        lo, hi = span["start_ns"], span.get("end_ns", span["start_ns"])
        return [e for e in self.events(name) if lo <= e["t_ns"] <= hi]

    def interference(self) -> Dict[int, Dict[int, int]]:
        """Who-evicted-whom counts over this run's reclaim events."""
        return interference_matrix(self.records)

    def render(self) -> str:
        parts = [f"== observe: {self.scenario} =="]
        parts.append(summarize_metrics(self.metrics()))
        parts.append("")
        parts.append(summarize_events(self.records))
        parts.append("")
        parts.append(summarize_pids(self.records))
        matrix = self.interference()
        if matrix:
            parts.append("")
            parts.append("interference matrix (reclaim events, evictor x victim):")
            parts.append(render_matrix(matrix, process_names(self.records)))
        if self.out_path:
            parts.append("")
            parts.append(f"wrote {len(self.records)} record(s) to {self.out_path}")
        if self.chrome_path:
            parts.append(
                f"wrote Chrome trace to {self.chrome_path}"
                f" (open at https://ui.perfetto.dev)"
            )
        return "\n".join(parts)


# ======================================================================
# Scenarios
# ======================================================================
def _scan_scenario(kernel: Kernel, config: MachineConfig, seed: int) -> Any:
    """FCCD probing with the cache full: probe misses trigger reclaim.

    Probing is denser than the paper's defaults (a prediction unit of a
    few pages instead of 5 MB) so that the probe misses themselves
    outgrow the reclaim batch headroom — ``kernel.reclaim`` events then
    land *inside* ``fccd.probe_batch`` spans, which is exactly the
    inference-versus-kernel join this scenario exists to demonstrate.
    """
    path = "/mnt0/observe.dat"
    nbytes = config.available_bytes * 3 // 2
    kernel.run_process(make_file(path, nbytes, sync=False), "setup")
    fccd = FCCD(
        rng=random.Random(seed),
        access_unit_bytes=8 * MIB,
        prediction_unit_bytes=256 * KIB,
        obs=kernel.obs,
    )
    plan = kernel.run_process(fccd.plan_file(path), "probe")
    return {"segments": len(plan.segments), "probes": plan.total_probes}


def _fldc_scenario(kernel: Kernel, config: MachineConfig, seed: int) -> Any:
    """FLDC detection and a directory refresh over an aged directory."""
    directory = "/mnt0/aged"
    rng = random.Random(seed)

    def setup():
        yield sc.mkdir(directory)
        yield from create_files(directory, 24, 256 * KIB, sync=False)
        yield from age_directory(directory, epochs=4, rng=rng)

    kernel.run_process(setup(), "setup")
    fldc = FLDC(obs=kernel.obs)

    def detect_and_refresh():
        names = (yield sc.readdir(directory)).value
        ordered, _stats = yield from fldc.layout_order(
            [f"{directory}/{n}" for n in names]
        )
        report = yield from fldc.refresh_directory(directory)
        return {"files": len(ordered), "moved": report.files_moved}

    return kernel.run_process(detect_and_refresh(), "fldc")


def _mac_scenario(kernel: Kernel, config: MachineConfig, seed: int) -> Any:
    """MAC growing an allocation while a competitor holds memory."""
    ps = config.page_size
    competitor_bytes = config.available_bytes // 3

    def competitor():
        region = (yield sc.vm_alloc(competitor_bytes)).value
        npages = competitor_bytes // ps
        for _ in range(6):
            yield sc.touch_range(region, 0, npages)
            yield sc.sleep(50 * 10**6)

    def mac_app():
        yield sc.sleep(100 * 10**6)
        mac = MAC(
            page_size=ps,
            initial_increment_bytes=4 * MIB,
            max_increment_bytes=16 * MIB,
            rng=random.Random(seed),
            obs=kernel.obs,
        )
        allocation = yield from mac.gb_alloc(4 * MIB, config.available_bytes, MIB)
        granted = 0 if allocation is None else allocation.granted_bytes
        if allocation is not None:
            yield from mac.gb_free(allocation)
        return {"granted_mb": granted // MIB}

    kernel.spawn(competitor(), "competitor")
    proc = kernel.spawn(mac_app(), "mac")
    kernel.run()
    return proc.result


def _contention_scenario(kernel: Kernel, config: MachineConfig, seed: int) -> Any:
    """Two FCCD clients share the kernel; each probe evicts the other.

    Each client's file is ~70% of memory, so the two working sets cannot
    coexist: client A's probe misses reclaim client B's pages and vice
    versa.  This is the multi-tenant arena at N=2: the clients run as
    resumable steppers under :class:`repro.sim.arena.Arena` with a
    round-robin policy, yielding :data:`~repro.sim.arena.STEP` per probe
    batch, and attribution turns the shared stream into per-client views
    plus a non-trivial interference matrix — which is what the
    acceptance test asserts.
    """
    from repro.sim.arena import Arena, RoundRobinPolicy

    paths = {"client_a": "/mnt0/client_a.dat", "client_b": "/mnt0/client_b.dat"}
    nbytes = config.available_bytes * 7 // 10

    def client(offset: int, path: str):
        # Each client writes its own file, so its pages are *owned* by
        # it — evicting them is attributable cross-client interference.
        yield from make_file(path, nbytes, sync=False)
        fccd = FCCD(
            rng=random.Random(seed + offset),
            access_unit_bytes=4 * MIB,
            prediction_unit_bytes=256 * KIB,
            obs=kernel.obs,
            step_markers=True,
        )
        plan = yield from fccd.plan_file(path, rounds=2)
        return plan.total_probes

    arena = Arena(kernel, policy=RoundRobinPolicy(), seed=seed)
    for i, (name, path) in enumerate(sorted(paths.items())):
        arena.add_client(
            name, lambda _c, i=i, path=path: client(i, path), kind="fccd"
        )
    clients = arena.run()
    return {
        "pids": {c.name: c.pid for c in clients},
        "probes": {c.name: c.result for c in clients},
    }


_SCENARIO_FNS = {
    "scan": _scan_scenario,
    "fldc": _fldc_scenario,
    "mac": _mac_scenario,
    "contention": _contention_scenario,
}


# ======================================================================
# Driver
# ======================================================================
def observe_figure(
    scenario: str = "scan",
    out_path: Optional[str] = None,
    config: Optional[MachineConfig] = None,
    seed: int = OBSERVE_SEED,
    chrome_trace: Optional[str] = None,
) -> ObserveReport:
    """Run one scenario with observability on; optionally dump JSONL.

    ``chrome_trace`` additionally writes the event stream as a Chrome
    ``trace_event`` file Perfetto loads directly (one track per pid).
    """
    if scenario not in _SCENARIO_FNS:
        raise ValueError(
            f"unknown scenario {scenario!r}; choose from {', '.join(SCENARIOS)}"
        )
    config = config or observe_config()
    kernel = Kernel(config)
    result = _SCENARIO_FNS[scenario](kernel, config, seed)
    records = list(kernel.obs.dump_records())
    report = ObserveReport(scenario=scenario, records=records, result=result)
    if out_path is not None:
        write_jsonl(Path(out_path), records)
        report.out_path = str(out_path)
    if chrome_trace is not None:
        from repro.obs.chrome import write_chrome_trace

        write_chrome_trace(Path(chrome_trace), records)
        report.chrome_path = str(chrome_trace)
    return report
