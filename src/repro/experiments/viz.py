"""Terminal plots for reproduced figures.

Pure-text rendering (no plotting dependencies are available offline):
:func:`line_chart` draws one or more (x, y) series on a character
canvas, :func:`bar_chart` draws labelled horizontal bars.  Both are used
by ``python -m repro <fig> --plot`` so the reproduced figures can be
*seen*, not just read as tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

MARKERS = "ox*+#@%&"


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    if hi <= lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(int(position * (cells - 1) + 0.5), cells - 1)


def line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Plot named series of (x, y) points on one canvas.

    Each series gets a marker from :data:`MARKERS`; the legend maps them
    back.  Axes are annotated with the data extremes.
    """
    if not series or all(not pts for pts in series.values()):
        raise ValueError("nothing to plot")
    if width < 8 or height < 4:
        raise ValueError("canvas too small")
    points = [p for pts in series.values() for p in pts]
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_lo > 0 and y_lo < y_hi * 0.5:
        y_lo = 0.0  # anchor ratio-like charts at zero

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in pts:
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    y_hi_tag = f"{y_hi:g}"
    y_lo_tag = f"{y_lo:g}"
    margin = max(len(y_hi_tag), len(y_lo_tag)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            tag = y_hi_tag.rjust(margin - 1)
        elif row_index == height - 1:
            tag = y_lo_tag.rjust(margin - 1)
        else:
            tag = " " * (margin - 1)
        lines.append(f"{tag}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    x_axis = f"{x_lo:g}".ljust(width - 8) + f"{x_hi:g}".rjust(8)
    lines.append(" " * (margin + 1) + x_axis)
    if x_label or y_label:
        lines.append(f"   x: {x_label}   y: {y_label}".rstrip())
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"   {legend}")
    return "\n".join(lines)


def bar_chart(
    bars: Sequence[Tuple[str, float]],
    width: int = 48,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bars with value annotations."""
    if not bars:
        raise ValueError("nothing to plot")
    peak = max(value for _label, value in bars)
    label_width = max(len(label) for label, _v in bars)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in bars:
        filled = _scale(value, 0.0, peak, width) + 1 if peak > 0 else 0
        bar = "█" * filled
        lines.append(
            f"{label.rjust(label_width)} |{bar.ljust(width)} {value:g}{unit}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Adapters: FigureResult -> chart
# ----------------------------------------------------------------------
def plot_figure(result, max_series: int = 6) -> Optional[str]:
    """Best-effort chart for a FigureResult; None if it has no shape.

    Heuristics: a numeric first column becomes the x axis with one line
    per remaining numeric column; otherwise categorical rows become a
    bar chart of the first numeric column.
    """
    rows = result.rows
    if not rows:
        return None
    columns = result.columns
    first = columns[0]
    numeric_cols = [
        c
        for c in columns
        if all(isinstance(r.get(c), (int, float)) and not isinstance(r.get(c), bool)
               for r in rows)
    ]
    if first in numeric_cols and len(numeric_cols) >= 2:
        series = {}
        for column in numeric_cols[1:max_series + 1]:
            if column == first or column.endswith("_std"):
                continue
            series[column] = [(r[first], r[column]) for r in rows]
        if series:
            return line_chart(
                series,
                title=f"{result.figure_id}: {result.title}",
                x_label=first,
            )
    if numeric_cols:
        value_col = numeric_cols[0]
        label_cols = [c for c in columns if c not in numeric_cols]
        bars = []
        for row in rows[:24]:
            label = " ".join(str(row[c]) for c in label_cols) or value_col
            bars.append((label, float(row[value_col])))
        return bar_chart(
            bars, title=f"{result.figure_id}: {result.title} ({value_col})"
        )
    return None
