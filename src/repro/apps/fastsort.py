"""fastsort — a two-pass external sort (Figures 3 and 7).

Pass one reads runs of records into a memory buffer, sorts, and writes
each sorted run to disk; pass two merges the runs.  The paper uses the
read phase to stress memory behaviour:

* the **static** version takes its pass size on the command line; too
  large a pass overcommits memory and the run buffer thrashes against
  the file cache and competing processes (Figure 7's cliff);
* **gb-fastsort** asks MAC for each pass's buffer (``gb_alloc`` before
  the pass, ``gb_free`` after), so the pass size adapts to currently
  available memory and paging never happens — at the cost of MAC's
  probing and waiting overheads, which the report breaks out.

The buffer is genuinely touched page by page as records arrive and again
as runs are written, so memory pressure flows through the simulated page
daemon exactly as it did through Linux 2.2's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Generator, List, Optional, Tuple

from repro.icl.mac import MAC, GbAllocation
from repro.sim import syscalls as sc

MIB = 1024 * 1024
RECORD_BYTES = 100
# Comparison-sort CPU cost: cost = NS_PER_RECORD_LOG * n * log2(n).
SORT_NS_PER_RECORD_LOG = 30
MERGE_NS_PER_RECORD = 60


@dataclass
class FastsortReport:
    """Timing breakdown of a fastsort phase."""

    input_path: str
    pass_bytes: List[int] = field(default_factory=list)
    records: int = 0
    read_ns: int = 0
    sort_ns: int = 0
    write_ns: int = 0
    mac_probe_ns: int = 0
    mac_wait_ns: int = 0
    total_ns: int = 0
    run_paths: List[str] = field(default_factory=list)

    @property
    def overhead_ns(self) -> int:
        """The two MAC overheads Figure 7 plots as "Overhead"."""
        return self.mac_probe_ns + self.mac_wait_ns

    @property
    def mean_pass_bytes(self) -> float:
        if not self.pass_bytes:
            return 0.0
        return sum(self.pass_bytes) / len(self.pass_bytes)


class _Buffer:
    """A sort buffer over one or more vm regions (MAC grants are chunked)."""

    def __init__(self, regions: List[Tuple[int, int]], page_size: int, nbytes: int):
        self.regions = regions
        self.page_size = page_size
        self.nbytes = nbytes

    @classmethod
    def from_allocation(cls, allocation: GbAllocation) -> "_Buffer":
        return cls(list(allocation.regions), allocation.page_size, allocation.granted_bytes)

    def _locate(self, page_number: int) -> Tuple[int, int]:
        for region_id, npages in self.regions:
            if page_number < npages:
                return region_id, page_number
            page_number -= npages
        raise IndexError("byte range beyond the buffer")

    def touch_bytes(self, start: int, nbytes: int) -> Generator:
        """Touch every page covering [start, start+nbytes)."""
        if nbytes <= 0:
            return None
        first = start // self.page_size
        last = (start + nbytes - 1) // self.page_size
        for page_number in range(first, last + 1):
            region_id, index = self._locate(page_number)
            yield sc.touch(region_id, index)
        return None


def _sort_cost_ns(records: int) -> int:
    if records <= 1:
        return 0
    return int(SORT_NS_PER_RECORD_LOG * records * max(math.log2(records), 1.0))


def _read_pass(fd: int, buffer: _Buffer, pass_size: int, unit: int) -> Generator:
    """Fill the buffer from the input file; returns (bytes, real_chunks)."""
    done = 0
    chunks: List[bytes] = []
    while done < pass_size:
        take = min(unit, pass_size - done)
        result = (yield sc.read(fd, take)).value
        if result.eof:
            break
        yield from buffer.touch_bytes(done, result.nbytes)
        if result.data is not None:
            chunks.append(result.data)
        done += result.nbytes
    return done, chunks


def _write_run(
    path: str, buffer: _Buffer, nbytes: int, unit: int, payload: Optional[bytes]
) -> Generator:
    """Write one sorted run, re-touching the buffer as it is drained."""
    fd = (yield sc.create(path)).value
    done = 0
    try:
        while done < nbytes:
            take = min(unit, nbytes - done)
            yield from buffer.touch_bytes(done, take)
            if payload is not None:
                yield sc.write(fd, payload[done : done + take])
            else:
                yield sc.write(fd, take)
            done += take
    finally:
        yield sc.close(fd)


def _sort_records(chunks: List[bytes]) -> Optional[bytes]:
    """Really sort 100-byte records when actual content is present."""
    if not chunks:
        return None
    blob = b"".join(chunks)
    usable = len(blob) - len(blob) % RECORD_BYTES
    records = [blob[i : i + RECORD_BYTES] for i in range(0, usable, RECORD_BYTES)]
    records.sort()
    return b"".join(records) + blob[usable:]


def fastsort_read_phase(
    input_path: str,
    run_dir: str,
    pass_bytes: int,
    unit: int = 1 * MIB,
) -> Generator:
    """Static fastsort read phase with a fixed, user-chosen pass size."""
    if pass_bytes < RECORD_BYTES:
        raise ValueError("pass size smaller than one record")
    report = FastsortReport(input_path=input_path)
    start = (yield sc.gettime()).value
    fd = (yield sc.open(input_path)).value
    # One buffer for the whole phase, as a real sort mallocs once; the
    # pages are faulted in on first use and stay hot across passes.
    region = (yield sc.vm_alloc(pass_bytes, "sortbuf")).value
    buffer = _Buffer([(region, _region_pages(pass_bytes))], _PAGE, pass_bytes)
    try:
        size = (yield sc.fstat(fd)).value.size
        consumed = 0
        index = 0
        while consumed < size:
            pass_size = min(pass_bytes, size - consumed)
            pass_size -= pass_size % RECORD_BYTES
            if pass_size == 0:
                break
            yield from _one_pass(report, fd, buffer, pass_size, run_dir, index, unit)
            consumed += report.pass_bytes[-1]
            index += 1
            if report.pass_bytes[-1] == 0:
                break
    finally:
        yield sc.vm_free(region)
        yield sc.close(fd)
    report.total_ns = (yield sc.gettime()).value - start
    return report


def gb_fastsort_read_phase(
    input_path: str,
    run_dir: str,
    mac: MAC,
    min_pass_bytes: int = 100 * MIB,
    unit: int = 1 * MIB,
) -> Generator:
    """MAC-adaptive fastsort read phase (gb-fastsort, §4.3.3).

    Frees each pass's memory before allocating the next, so it "meshes
    well with [the gb_alloc] interface and cannot deadlock".
    """
    report = FastsortReport(input_path=input_path)
    start = (yield sc.gettime()).value
    fd = (yield sc.open(input_path)).value
    try:
        size = (yield sc.fstat(fd)).value.size
        consumed = 0
        index = 0
        while consumed < size:
            remaining = size - consumed
            remaining -= remaining % RECORD_BYTES
            if remaining == 0:
                break
            minimum = min(min_pass_bytes, remaining)
            minimum -= minimum % RECORD_BYTES
            minimum = max(minimum, RECORD_BYTES)
            t0 = (yield sc.gettime()).value
            waits_before = mac.stats.waits
            allocation = yield from mac.gb_alloc_wait(
                minimum, remaining, multiple_bytes=RECORD_BYTES
            )
            t1 = (yield sc.gettime()).value
            wait_ns = 0  # sleeps inside gb_alloc_wait
            waits = mac.stats.waits - waits_before
            wait_ns = waits * 250_000_000
            report.mac_wait_ns += wait_ns
            report.mac_probe_ns += (t1 - t0) - wait_ns
            buffer = _Buffer.from_allocation(allocation)
            yield from _one_pass(
                report, fd, buffer, allocation.granted_bytes, run_dir, index, unit
            )
            yield from mac.gb_free(allocation)
            consumed += report.pass_bytes[-1]
            index += 1
            if report.pass_bytes[-1] == 0:
                break
    finally:
        yield sc.close(fd)
    report.total_ns = (yield sc.gettime()).value - start
    return report


def _one_pass(
    report: FastsortReport,
    fd: int,
    buffer: _Buffer,
    pass_size: int,
    run_dir: str,
    index: int,
    unit: int,
) -> Generator:
    """Shared read→sort→write body for one run."""
    t0 = (yield sc.gettime()).value
    nbytes, chunks = yield from _read_pass(fd, buffer, pass_size, unit)
    t1 = (yield sc.gettime()).value
    report.pass_bytes.append(nbytes)
    if nbytes == 0:
        return
    records = nbytes // RECORD_BYTES
    report.records += records
    yield sc.compute(_sort_cost_ns(records))
    payload = _sort_records(chunks)
    t2 = (yield sc.gettime()).value
    run_path = f"{run_dir}/run{index:04d}"
    yield from _write_run(run_path, buffer, nbytes, unit, payload)
    t3 = (yield sc.gettime()).value
    report.run_paths.append(run_path)
    report.read_ns += t1 - t0
    report.sort_ns += t2 - t1
    report.write_ns += t3 - t2


def fccd_fastsort_read_phase(
    input_path: str,
    run_dir: str,
    pass_bytes: int,
    fccd,
    unit: int = 1 * MIB,
) -> Generator:
    """Figure 3's gb-fastsort: read the input in FCCD's best probe order.

    The paper's modification: the sort "must be willing to read parts of
    a single input file in a different order" — a probe phase before the
    main loop, then record-aligned segments consumed cached-first.
    """
    report = FastsortReport(input_path=input_path)
    start = (yield sc.gettime()).value
    fd = (yield sc.open(input_path)).value
    try:
        size = (yield sc.fstat(fd)).value.size
        segments = yield from fccd.probe_fd(fd, size, align=RECORD_BYTES)
        ranges = [
            (s.offset, s.length)
            for s in sorted(segments, key=lambda s: (s.probe_ns, s.offset))
        ]
        index = 0
        pending = list(ranges)
        region = (yield sc.vm_alloc(pass_bytes, "sortbuf")).value
        buffer = _Buffer([(region, _region_pages(pass_bytes))], _PAGE, pass_bytes)
        while pending:
            pass_size = min(pass_bytes, sum(length for _o, length in pending))
            pass_size -= pass_size % RECORD_BYTES
            if pass_size == 0:
                break
            t0 = (yield sc.gettime()).value
            filled = 0
            chunks: List[bytes] = []
            while filled < pass_size and pending:
                offset, length = pending[0]
                take = min(unit, length, pass_size - filled)
                take -= take % RECORD_BYTES if take != length else 0
                if take == 0:
                    break
                result = (yield sc.pread(fd, offset, take)).value
                yield from buffer.touch_bytes(filled, result.nbytes)
                if result.data is not None:
                    chunks.append(result.data)
                filled += result.nbytes
                if take == length:
                    pending.pop(0)
                else:
                    pending[0] = (offset + take, length - take)
            t1 = (yield sc.gettime()).value
            report.pass_bytes.append(filled)
            if filled == 0:
                break
            records = filled // RECORD_BYTES
            report.records += records
            yield sc.compute(_sort_cost_ns(records))
            payload = _sort_records(chunks)
            t2 = (yield sc.gettime()).value
            run_path = f"{run_dir}/run{index:04d}"
            yield from _write_run(run_path, buffer, filled, unit, payload)
            t3 = (yield sc.gettime()).value
            report.run_paths.append(run_path)
            report.read_ns += t1 - t0
            report.sort_ns += t2 - t1
            report.write_ns += t3 - t2
            index += 1
        yield sc.vm_free(region)
    finally:
        yield sc.close(fd)
    report.total_ns = (yield sc.gettime()).value - start
    return report


def stdin_fastsort_read_phase(
    in_fd: int,
    run_dir: str,
    pass_bytes: int,
    unit: int = 1 * MIB,
) -> Generator:
    """Unmodified fastsort reading records from a pipe (gbp -mem -out | sort).

    The data arrives already re-ordered by gbp, but every byte pays the
    extra copy through the OS pipe — the paper's explanation for the
    residual gap in Figure 3's third sort bar.
    """
    report = FastsortReport(input_path=f"<pipe fd {in_fd}>")
    start = (yield sc.gettime()).value
    index = 0
    eof = False
    region = (yield sc.vm_alloc(pass_bytes, "sortbuf")).value
    buffer = _Buffer([(region, _region_pages(pass_bytes))], _PAGE, pass_bytes)
    while not eof:
        t0 = (yield sc.gettime()).value
        filled = 0
        while filled < pass_bytes:
            take = min(unit, pass_bytes - filled)
            result = (yield sc.read(in_fd, take)).value
            if result.eof:
                eof = True
                break
            yield from buffer.touch_bytes(filled, result.nbytes)
            filled += result.nbytes
        t1 = (yield sc.gettime()).value
        usable = filled - filled % RECORD_BYTES
        report.pass_bytes.append(usable)
        if usable == 0:
            break
        records = usable // RECORD_BYTES
        report.records += records
        yield sc.compute(_sort_cost_ns(records))
        t2 = (yield sc.gettime()).value
        run_path = f"{run_dir}/run{index:04d}"
        yield from _write_run(run_path, buffer, usable, unit, None)
        t3 = (yield sc.gettime()).value
        report.run_paths.append(run_path)
        report.read_ns += t1 - t0
        report.sort_ns += t2 - t1
        report.write_ns += t3 - t2
        index += 1
    yield sc.vm_free(region)
    report.total_ns = (yield sc.gettime()).value - start
    return report


def merge_runs(
    run_paths: List[str], output_path: str, unit: int = 1 * MIB
) -> Generator:
    """Pass two: k-way merge of the sorted runs into one output file.

    Real record content is merged properly when present; synthetic runs
    charge the same I/O and CPU without materializing bytes.
    """
    fds = []
    out_fd = (yield sc.create(output_path)).value
    total = 0
    try:
        buffers: List[bytes] = []
        synthetic = False
        for path in run_paths:
            fd = (yield sc.open(path)).value
            fds.append(fd)
        # Round-robin chunked reads model the merge's alternating access.
        exhausted = [False] * len(fds)
        while not all(exhausted):
            for i, fd in enumerate(fds):
                if exhausted[i]:
                    continue
                result = (yield sc.read(fd, unit)).value
                if result.eof:
                    exhausted[i] = True
                    continue
                total += result.nbytes
                if result.data is not None:
                    buffers.append(result.data)
                else:
                    synthetic = True
                yield sc.compute(MERGE_NS_PER_RECORD * (result.nbytes // RECORD_BYTES))
                if synthetic:
                    yield sc.write(out_fd, result.nbytes)
        if buffers and not synthetic:
            payload = _sort_records(buffers)
            yield sc.write(out_fd, payload)
    finally:
        for fd in fds:
            yield sc.close(fd)
        yield sc.close(out_fd)
    return total


# The touch granularity for static buffers: one simulated page.  Static
# fastsort learns it the same way MAC does — it is platform knowledge.
_PAGE = 4096


def set_static_buffer_page(page_size: int) -> None:
    """Configure the page granularity static fastsort touches with.

    The MAC-adaptive variant gets the page size from its allocation; the
    static variant needs to be told (like any program calling
    getpagesize()).  Benchmarks call this once per kernel configuration.
    """
    global _PAGE
    if page_size <= 0:
        raise ValueError("page size must be positive")
    _PAGE = page_size


def _region_pages(nbytes: int) -> int:
    return -(-nbytes // _PAGE)
