"""Single-file and multi-file scans (Figures 2 and 4).

The linear scan is the paper's strawman: purely sequential reads, which
on an LRU-like cache larger-than-memory file becomes the LRU worst case
— every repeated run fetches everything from disk.  The gray-box scan
asks FCCD which access units are cached and reads those first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Sequence

from repro.icl.fccd import FCCD
from repro.sim import syscalls as sc

MIB = 1024 * 1024


@dataclass
class ScanReport:
    """Outcome of one scan run."""

    path: str
    bytes_read: int
    elapsed_ns: int
    probe_ns: int = 0

    @property
    def bandwidth_bytes_per_s(self) -> float:
        if self.elapsed_ns == 0:
            return 0.0
        return self.bytes_read / (self.elapsed_ns / 1e9)


def linear_scan(path: str, unit: int = 1 * MIB) -> Generator:
    """Traditional sequential scan of one file."""
    start = (yield sc.gettime()).value
    fd = (yield sc.open(path)).value
    total = 0
    try:
        while True:
            result = (yield sc.read(fd, unit)).value
            if result.eof:
                break
            total += result.nbytes
    finally:
        yield sc.close(fd)
    end = (yield sc.gettime()).value
    return ScanReport(path=path, bytes_read=total, elapsed_ns=end - start)


def gray_scan(
    path: str,
    fccd: Optional[FCCD] = None,
    unit: int = 1 * MIB,
    align: int = 1,
) -> Generator:
    """FCCD-guided scan: cached access units first, then the rest.

    Reading in access-unit-sized chunks is also the paper's positive-
    feedback control: after a run, the cache holds whole access units,
    which makes the next run's probes even more accurate.
    """
    layer = fccd or FCCD()
    start = (yield sc.gettime()).value
    fd = (yield sc.open(path)).value
    total = 0
    probe_ns = 0
    try:
        size = (yield sc.fstat(fd)).value.size
        probe_start = (yield sc.gettime()).value
        segments = yield from layer.probe_fd(fd, size, align)
        probe_ns = (yield sc.gettime()).value - probe_start
        for segment in sorted(segments, key=lambda s: (s.probe_ns, s.offset)):
            offset = segment.offset
            end_off = segment.offset + segment.length
            while offset < end_off:
                take = min(unit, end_off - offset)
                result = (yield sc.pread(fd, offset, take)).value
                if result.nbytes == 0:
                    break
                offset += result.nbytes
                total += result.nbytes
    finally:
        yield sc.close(fd)
    end = (yield sc.gettime()).value
    return ScanReport(
        path=path, bytes_read=total, elapsed_ns=end - start, probe_ns=probe_ns
    )


def multi_file_scan(paths: Sequence[str], unit: int = 1 * MIB) -> Generator:
    """Scan several files sequentially in the given order."""
    start = (yield sc.gettime()).value
    total = 0
    for path in paths:
        report = yield from linear_scan(path, unit)
        total += report.bytes_read
    end = (yield sc.gettime()).value
    return ScanReport(
        path=f"[{len(paths)} files]", bytes_read=total, elapsed_ns=end - start
    )
