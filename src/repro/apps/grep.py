"""grep in the paper's three flavours (Figure 3, left group).

The simulated CPU cost is charged per byte scanned; real matching is
performed when the workload stored actual file content (small files in
tests), and the match count is reported either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence

from repro.icl import gbp
from repro.icl.fccd import FCCD
from repro.sim import syscalls as sc

MIB = 1024 * 1024

# Pattern-scan CPU cost on the modelled hardware (P-III era grep ≈ a
# few hundred MB/s through memory).
GREP_CPU_NS_PER_BYTE = 5


@dataclass
class GrepReport:
    """Result of one grep run over a set of files."""

    paths: List[str] = field(default_factory=list)
    matches: int = 0
    bytes_scanned: int = 0
    elapsed_ns: int = 0


def _scan_one(path: str, pattern: bytes, unit: int) -> Generator:
    """Scan one file; returns (bytes, matches)."""
    fd = (yield sc.open(path)).value
    total = 0
    matches = 0
    tail = b""
    try:
        while True:
            result = (yield sc.read(fd, unit)).value
            if result.eof:
                break
            total += result.nbytes
            yield sc.compute(GREP_CPU_NS_PER_BYTE * result.nbytes)
            if result.data is not None and pattern:
                window = tail + result.data
                matches += window.count(pattern)
                tail = window[max(len(window) - len(pattern) + 1, 0):]
    finally:
        yield sc.close(fd)
    return total, matches


def grep(paths: Sequence[str], pattern: bytes = b"foo", unit: int = 1 * MIB) -> Generator:
    """Unmodified grep: processes files in exactly the order given."""
    start = (yield sc.gettime()).value
    report = GrepReport(paths=list(paths))
    for path in report.paths:
        nbytes, matches = yield from _scan_one(path, pattern, unit)
        report.bytes_scanned += nbytes
        report.matches += matches
    report.elapsed_ns = (yield sc.gettime()).value - start
    return report


def gb_grep(
    paths: Sequence[str],
    pattern: bytes = b"foo",
    fccd: Optional[FCCD] = None,
    unit: int = 1 * MIB,
) -> Generator:
    """grep modified to re-order its file list through the FCCD library.

    The paper's version of this change turned 10 lines of grep into
    roughly 30; here it is the two extra statements below.
    """
    layer = fccd or FCCD()
    start = (yield sc.gettime()).value
    ordered, _plans = yield from layer.order_files(list(paths))
    report = GrepReport(paths=ordered)
    for path in ordered:
        nbytes, matches = yield from _scan_one(path, pattern, unit)
        report.bytes_scanned += nbytes
        report.matches += matches
    report.elapsed_ns = (yield sc.gettime()).value - start
    return report


def gbp_grep(
    paths: Sequence[str],
    pattern: bytes = b"foo",
    fccd: Optional[FCCD] = None,
    unit: int = 1 * MIB,
    mode: str = "mem",
) -> Generator:
    """Unmodified grep over `gbp <mode> *` output.

    Pays the gbp process startup and the duplicate opens (gbp probes and
    closes each file, grep then re-opens them) — the "slight additional
    overhead" visible in Figure 3's third bars.
    """
    start = (yield sc.gettime()).value
    ordered = yield from gbp.order_paths(list(paths), mode=mode, fccd=fccd)
    report = GrepReport(paths=ordered)
    for path in ordered:
        nbytes, matches = yield from _scan_one(path, pattern, unit)
        report.bytes_scanned += nbytes
        report.matches += matches
    report.elapsed_ns = (yield sc.gettime()).value - start
    return report
