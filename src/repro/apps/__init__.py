"""Applications used in the paper's evaluation.

Each application exists in the paper's three flavours where relevant:

* **unmodified** — reads files in the order given (or purely
  sequentially);
* **gb-** — linked against an ICL and re-ordering internally (the
  ~10→30-line change the paper describes for grep);
* **gbp-** — unmodified logic fed by the ``gbp`` utility (command-line
  substitution or a pipe).

All are generator processes for :class:`repro.sim.Kernel`.
"""

from repro.apps.scan import ScanReport, gray_scan, linear_scan
from repro.apps.grep import GrepReport, gb_grep, gbp_grep, grep
from repro.apps.search import SearchReport, gb_search, search
from repro.apps.fastsort import (
    FastsortReport,
    fastsort_read_phase,
    fccd_fastsort_read_phase,
    gb_fastsort_read_phase,
    merge_runs,
    stdin_fastsort_read_phase,
)

__all__ = [
    "ScanReport",
    "linear_scan",
    "gray_scan",
    "GrepReport",
    "grep",
    "gb_grep",
    "gbp_grep",
    "SearchReport",
    "search",
    "gb_search",
    "FastsortReport",
    "fastsort_read_phase",
    "fccd_fastsort_read_phase",
    "gb_fastsort_read_phase",
    "merge_runs",
    "stdin_fastsort_read_phase",
]
