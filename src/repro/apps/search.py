"""First-match multi-file search (Figure 4, right group).

Searches files for the first occurrence of a match and stops.  An
unmodified search is "at the mercy of the file ordering specified by the
user"; the gray-box search asks FCCD for the best order, so a cached
file containing the match is visited almost immediately.

Which file contains the match is part of the workload description: when
files carry real content the pattern is actually searched; for synthetic
(length-only) files the workload passes ``match_path`` explicitly —
Figure 4's setup places the match "in a cached file which is specified
last on the command line".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence

from repro.apps.grep import GREP_CPU_NS_PER_BYTE
from repro.icl.fccd import FCCD
from repro.sim import syscalls as sc

MIB = 1024 * 1024


@dataclass
class SearchReport:
    """Result of one first-match search."""

    visited: List[str] = field(default_factory=list)
    found_in: Optional[str] = None
    bytes_scanned: int = 0
    elapsed_ns: int = 0


def _search_one(path: str, pattern: bytes, match_path: Optional[str], unit: int) -> Generator:
    """Scan one file; returns (bytes_scanned, found_offset_or_None)."""
    fd = (yield sc.open(path)).value
    total = 0
    found = None
    tail = b""
    try:
        while True:
            result = (yield sc.read(fd, unit)).value
            if result.eof:
                break
            yield sc.compute(GREP_CPU_NS_PER_BYTE * result.nbytes)
            if result.data is not None and pattern:
                window = tail + result.data
                hit = window.find(pattern)
                if hit >= 0:
                    found = total - len(tail) + hit
                tail = window[max(len(window) - len(pattern) + 1, 0):]
            total += result.nbytes
            if found is not None:
                break
        if found is None and match_path is not None and path == match_path:
            # Synthetic content: the workload says the match is here; the
            # whole file was scanned to find it.
            found = total
    finally:
        yield sc.close(fd)
    return total, found


def search(
    paths: Sequence[str],
    pattern: bytes = b"needle",
    match_path: Optional[str] = None,
    unit: int = 1 * MIB,
) -> Generator:
    """Unmodified search: visit files in the order given, stop on a match."""
    start = (yield sc.gettime()).value
    report = SearchReport()
    for path in paths:
        report.visited.append(path)
        nbytes, found = yield from _search_one(path, pattern, match_path, unit)
        report.bytes_scanned += nbytes
        if found is not None:
            report.found_in = path
            break
    report.elapsed_ns = (yield sc.gettime()).value - start
    return report


def gb_search(
    paths: Sequence[str],
    pattern: bytes = b"needle",
    match_path: Optional[str] = None,
    fccd: Optional[FCCD] = None,
    unit: int = 1 * MIB,
) -> Generator:
    """Gray-box search: FCCD picks the order, cached files first."""
    layer = fccd or FCCD()
    start = (yield sc.gettime()).value
    ordered, _plans = yield from layer.order_files(list(paths))
    report = SearchReport()
    for path in ordered:
        report.visited.append(path)
        nbytes, found = yield from _search_one(path, pattern, match_path, unit)
        report.bytes_scanned += nbytes
        if found is not None:
            report.found_in = path
            break
    report.elapsed_ns = (yield sc.gettime()).value - start
    return report
