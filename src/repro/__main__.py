"""Command-line entry point: run any reproduced experiment by name.

Usage::

    python -m repro list
    python -m repro fig2
    python -m repro fig7 table1 ablation-threshold
    python -m repro run --all
    python -m repro all --jobs 4
    python -m repro fig1 --jobs 8 --no-cache
    python -m repro fig5 --cache-dir /tmp/repro-cache
    python -m repro observe scan --out observe-scan.jsonl
    python -m repro fig2 --metrics-out fig2-metrics.jsonl
    python -m repro arena --n 64 --out arena.jsonl --report arena.json
    python -m repro arena --sweep 1,8,64,1024 --policy weighted

Trials fan out over a process pool (``--jobs N``) and completed trials
are cached on disk (default ``.repro-cache/``, or ``$REPRO_CACHE_DIR``;
``--no-cache`` disables, ``--cache-dir`` relocates).  Re-running an
unchanged experiment is instant; per-experiment trial telemetry is
printed to stderr.

``observe <scenario>`` runs one always-instrumented scenario (``scan``,
``fldc``, ``mac``, ``contention``) and dumps every metric, event, and
span as JSONL; ``--chrome-trace FILE`` additionally writes a
Perfetto-loadable Chrome trace of the run; ``--metrics-out FILE``
writes the runner telemetry and per-trial metric samples of any
figure/ablation run to JSONL for offline analysis.

``arena`` interleaves N gray-box tenants on one shared kernel
(:mod:`repro.experiments.arena`): ``--n N`` runs one arena and prints
the per-client fairness/accuracy/throughput report (``--out`` dumps the
attributed obs stream as JSONL, ``--report`` the report as JSON);
``--sweep N,N,...`` (or ``--sweep default`` for 1→1024) prints the
contention sweep table.

``channels`` transmits a framed payload over a covert channel between
two arena tenants (:mod:`repro.experiments.channels`) and reports
bandwidth and bit-error rate — ``--channel residency|writeback|both``,
``--noise L`` for the injector ladder, ``--n-background K`` for cache
pressure, ``--sweep`` for the channel x platform x noise grid.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Callable, Dict, List

from repro.experiments import runner
from repro.experiments.ablations import (
    ablation_mac_increment,
    ablation_probe_placement,
    ablation_refresh_policy,
    ablation_threshold_vs_sort,
    lfs_ordering_experiment,
)
from repro.experiments.figures import (
    fig1_probe_correlation,
    fig2_single_file_scan,
    fig3_applications,
    fig4_multi_platform,
    fig5_file_ordering,
    fig6_aging_refresh,
    fig7_sort_mac,
    mac_available_memory,
)
from repro.experiments.robustness import robustness_noise_sweep
from repro.experiments.tables import table1_prior_systems, table2_case_studies

EXPERIMENTS: Dict[str, Callable] = {
    "fig1": fig1_probe_correlation,
    "fig2": fig2_single_file_scan,
    "fig3": fig3_applications,
    "fig4": fig4_multi_platform,
    "fig5": fig5_file_ordering,
    "fig6": fig6_aging_refresh,
    "fig7": fig7_sort_mac,
    "mac-available": mac_available_memory,
    "table1": table1_prior_systems,
    "table2": table2_case_studies,
    "ablation-probe-placement": ablation_probe_placement,
    "ablation-threshold": ablation_threshold_vs_sort,
    "ablation-mac-increment": ablation_mac_increment,
    "ablation-refresh-policy": ablation_refresh_policy,
    "extension-lfs": lfs_ordering_experiment,
    "robustness": robustness_noise_sweep,
    # Single-domain ablations: attribute an accuracy (or covert-channel
    # capacity) loss to one defensive knob at a time.
    "robustness-latency": lambda: robustness_noise_sweep(domain="latency"),
    "robustness-faults": lambda: robustness_noise_sweep(domain="faults"),
    "robustness-sched": lambda: robustness_noise_sweep(domain="sched"),
    "robustness-background": lambda: robustness_noise_sweep(domain="background"),
}

USAGE = (
    "usage: python -m repro <name> [<name> ...] [--jobs N] [--no-cache]"
    " [--cache-dir DIR] [--plot] [--metrics-out FILE]\n"
    "       python -m repro observe [scan|fldc|mac|contention]"
    " [--out FILE] [--chrome-trace FILE]\n"
    "       python -m repro arena [--n N | --sweep N,N,...]"
    " [--policy round-robin|weighted|random] [--seed S]\n"
    "                             [--mix kind=w,...] [--out FILE]"
    " [--report FILE]\n"
    "       python -m repro channels [--channel residency|writeback|both]"
    " [--noise L] [--n-background K]\n"
    "                                [--platform P] [--bits N] [--sweep]"
    " [--out FILE] [--report FILE]"
)


def _print_stats(stats_list) -> None:
    for stats in stats_list:
        print(f"[runner] {stats.summary()}", file=sys.stderr, flush=True)


def main(argv) -> int:
    args = list(argv[1:])
    # ``channels`` owns its own flag grammar (bare --sweep, --n-background),
    # which the generic option loop below would misparse — delegate whole.
    if args and args[0] == "channels":
        from repro.experiments.channels import cli_main

        return cli_main(args[1:])
    plot = False
    jobs = 1
    use_cache = True
    cache_dir = None
    metrics_out = None
    out_path = None
    chrome_trace = None
    arena_n = None
    arena_sweep_arg = None
    arena_policy = "round-robin"
    arena_seed = None
    arena_mix = None
    report_path = None
    names: List[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--plot":
            plot = True
        elif arg == "--no-cache":
            use_cache = False
        elif arg in ("--jobs", "--cache-dir", "--metrics-out", "--out",
                     "--chrome-trace", "--n", "--sweep", "--policy",
                     "--seed", "--mix", "--report"):
            if i + 1 >= len(args):
                print(f"{arg} needs a value", file=sys.stderr)
                print(USAGE, file=sys.stderr)
                return 2
            value = args[i + 1]
            i += 1
            if arg == "--jobs":
                try:
                    jobs = int(value)
                except ValueError:
                    jobs = 0
                if jobs < 1:
                    print("--jobs needs a positive integer", file=sys.stderr)
                    return 2
            elif arg == "--cache-dir":
                cache_dir = value
            elif arg == "--metrics-out":
                metrics_out = value
            elif arg == "--chrome-trace":
                chrome_trace = value
            elif arg == "--n":
                arena_n = value
            elif arg == "--sweep":
                arena_sweep_arg = value
            elif arg == "--policy":
                arena_policy = value
            elif arg == "--seed":
                arena_seed = value
            elif arg == "--mix":
                arena_mix = value
            elif arg == "--report":
                report_path = value
            else:
                out_path = value
        elif arg.startswith("--metrics-out="):
            metrics_out = arg.split("=", 1)[1]
        elif arg.startswith("--out="):
            out_path = arg.split("=", 1)[1]
        elif arg.startswith("--chrome-trace="):
            chrome_trace = arg.split("=", 1)[1]
        elif arg.startswith("--jobs="):
            try:
                jobs = int(arg.split("=", 1)[1])
            except ValueError:
                jobs = 0
            if jobs < 1:
                print("--jobs needs a positive integer", file=sys.stderr)
                return 2
        elif arg.startswith("--cache-dir="):
            cache_dir = arg.split("=", 1)[1]
        elif arg.startswith("-"):
            print(f"unknown option {arg}", file=sys.stderr)
            print(USAGE, file=sys.stderr)
            return 2
        else:
            names.append(arg)
        i += 1

    # `run` is an alias so `python -m repro run --all` reads naturally.
    if names and names[0] == "run":
        names = names[1:] or ["all"]
    if "--all" in names:
        names = [n for n in names if n != "--all"] or ["all"]

    if names and names[0] == "arena":
        from repro.experiments.arena import (
            ARENA_SEED,
            DEFAULT_MIX,
            SWEEP_NS,
            arena_sweep,
            render_sweep,
            run_arena,
        )
        from repro.sim.arena import POLICIES

        if arena_policy not in POLICIES:
            print(
                f"unknown policy {arena_policy!r}"
                f" (choose from {', '.join(POLICIES)})",
                file=sys.stderr,
            )
            return 2
        try:
            seed = int(arena_seed, 0) if arena_seed is not None else ARENA_SEED
        except ValueError:
            print("--seed needs an integer", file=sys.stderr)
            return 2
        mix = arena_mix or DEFAULT_MIX
        try:
            if arena_sweep_arg is not None:
                ns = (
                    SWEEP_NS
                    if arena_sweep_arg == "default"
                    else tuple(
                        int(part) for part in arena_sweep_arg.split(",") if part
                    )
                )
                reports = arena_sweep(ns, policy=arena_policy, seed=seed, mix=mix)
                print(render_sweep(reports))
            else:
                n = int(arena_n) if arena_n is not None else 8
                report = run_arena(
                    n,
                    policy=arena_policy,
                    seed=seed,
                    mix=mix,
                    out_path=out_path,
                    report_path=report_path,
                )
                print(report.render())
        except ValueError as exc:
            print(f"arena: {exc}", file=sys.stderr)
            return 2
        return 0

    if names and names[0] == "observe":
        from repro.experiments.observe import SCENARIOS, observe_figure

        scenarios = names[1:] or ["scan"]
        unknown = [s for s in scenarios if s not in SCENARIOS]
        if unknown:
            print(
                f"unknown scenario(s): {', '.join(unknown)}"
                f" (choose from {', '.join(SCENARIOS)})",
                file=sys.stderr,
            )
            return 2
        for scenario in scenarios:
            if out_path is not None and len(scenarios) == 1:
                dest = out_path
            else:
                dest = f"observe-{scenario}.jsonl"
            if chrome_trace is not None and len(scenarios) == 1:
                chrome_dest = chrome_trace
            elif chrome_trace is not None:
                chrome_dest = f"observe-{scenario}.trace.json"
            else:
                chrome_dest = None
            report = observe_figure(scenario, out_path=dest,
                                    chrome_trace=chrome_dest)
            print(report.render())
            print()
        return 0

    if not names or names == ["list"]:
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  all")
        print("  observe")
        print("  arena")
        print("  channels")
        print(f"\n{USAGE}")
        return 0 if names else 2
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("run `python -m repro list` for the catalogue", file=sys.stderr)
        return 2

    all_stats = []
    with runner.configuration(jobs=jobs, use_cache=use_cache, cache_dir=cache_dir):
        runner.drain_stats()
        for name in names:
            result = EXPERIMENTS[name]()
            print(result.render())
            stats = runner.drain_stats()
            all_stats.extend(stats)
            _print_stats(stats)
            if plot:
                from repro.experiments.viz import plot_figure

                chart = plot_figure(result)
                if chart:
                    print()
                    print(chart)
            print()
    if metrics_out is not None:
        from repro.obs.export import run_stats_records, write_jsonl

        count = write_jsonl(Path(metrics_out), run_stats_records(all_stats))
        print(
            f"[metrics] wrote {count} record(s) to {metrics_out}",
            file=sys.stderr,
            flush=True,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
