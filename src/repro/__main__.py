"""Command-line entry point: run any reproduced experiment by name.

Usage::

    python -m repro list
    python -m repro fig2
    python -m repro fig7 table1 ablation-threshold
    python -m repro run --all
    python -m repro all --jobs 4
    python -m repro fig1 --jobs 8 --no-cache
    python -m repro fig5 --cache-dir /tmp/repro-cache
    python -m repro observe scan --out observe-scan.jsonl
    python -m repro fig2 --metrics-out fig2-metrics.jsonl

Trials fan out over a process pool (``--jobs N``) and completed trials
are cached on disk (default ``.repro-cache/``, or ``$REPRO_CACHE_DIR``;
``--no-cache`` disables, ``--cache-dir`` relocates).  Re-running an
unchanged experiment is instant; per-experiment trial telemetry is
printed to stderr.

``observe <scenario>`` runs one always-instrumented scenario (``scan``,
``fldc``, ``mac``, ``contention``) and dumps every metric, event, and
span as JSONL; ``--chrome-trace FILE`` additionally writes a
Perfetto-loadable Chrome trace of the run; ``--metrics-out FILE``
writes the runner telemetry and per-trial metric samples of any
figure/ablation run to JSONL for offline analysis.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Callable, Dict, List

from repro.experiments import runner
from repro.experiments.ablations import (
    ablation_mac_increment,
    ablation_probe_placement,
    ablation_refresh_policy,
    ablation_threshold_vs_sort,
    lfs_ordering_experiment,
)
from repro.experiments.figures import (
    fig1_probe_correlation,
    fig2_single_file_scan,
    fig3_applications,
    fig4_multi_platform,
    fig5_file_ordering,
    fig6_aging_refresh,
    fig7_sort_mac,
    mac_available_memory,
)
from repro.experiments.robustness import robustness_noise_sweep
from repro.experiments.tables import table1_prior_systems, table2_case_studies

EXPERIMENTS: Dict[str, Callable] = {
    "fig1": fig1_probe_correlation,
    "fig2": fig2_single_file_scan,
    "fig3": fig3_applications,
    "fig4": fig4_multi_platform,
    "fig5": fig5_file_ordering,
    "fig6": fig6_aging_refresh,
    "fig7": fig7_sort_mac,
    "mac-available": mac_available_memory,
    "table1": table1_prior_systems,
    "table2": table2_case_studies,
    "ablation-probe-placement": ablation_probe_placement,
    "ablation-threshold": ablation_threshold_vs_sort,
    "ablation-mac-increment": ablation_mac_increment,
    "ablation-refresh-policy": ablation_refresh_policy,
    "extension-lfs": lfs_ordering_experiment,
    "robustness": robustness_noise_sweep,
}

USAGE = (
    "usage: python -m repro <name> [<name> ...] [--jobs N] [--no-cache]"
    " [--cache-dir DIR] [--plot] [--metrics-out FILE]\n"
    "       python -m repro observe [scan|fldc|mac|contention]"
    " [--out FILE] [--chrome-trace FILE]"
)


def _print_stats(stats_list) -> None:
    for stats in stats_list:
        print(f"[runner] {stats.summary()}", file=sys.stderr, flush=True)


def main(argv) -> int:
    args = list(argv[1:])
    plot = False
    jobs = 1
    use_cache = True
    cache_dir = None
    metrics_out = None
    out_path = None
    chrome_trace = None
    names: List[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--plot":
            plot = True
        elif arg == "--no-cache":
            use_cache = False
        elif arg in ("--jobs", "--cache-dir", "--metrics-out", "--out",
                     "--chrome-trace"):
            if i + 1 >= len(args):
                print(f"{arg} needs a value", file=sys.stderr)
                print(USAGE, file=sys.stderr)
                return 2
            value = args[i + 1]
            i += 1
            if arg == "--jobs":
                try:
                    jobs = int(value)
                except ValueError:
                    jobs = 0
                if jobs < 1:
                    print("--jobs needs a positive integer", file=sys.stderr)
                    return 2
            elif arg == "--cache-dir":
                cache_dir = value
            elif arg == "--metrics-out":
                metrics_out = value
            elif arg == "--chrome-trace":
                chrome_trace = value
            else:
                out_path = value
        elif arg.startswith("--metrics-out="):
            metrics_out = arg.split("=", 1)[1]
        elif arg.startswith("--out="):
            out_path = arg.split("=", 1)[1]
        elif arg.startswith("--chrome-trace="):
            chrome_trace = arg.split("=", 1)[1]
        elif arg.startswith("--jobs="):
            try:
                jobs = int(arg.split("=", 1)[1])
            except ValueError:
                jobs = 0
            if jobs < 1:
                print("--jobs needs a positive integer", file=sys.stderr)
                return 2
        elif arg.startswith("--cache-dir="):
            cache_dir = arg.split("=", 1)[1]
        elif arg.startswith("-"):
            print(f"unknown option {arg}", file=sys.stderr)
            print(USAGE, file=sys.stderr)
            return 2
        else:
            names.append(arg)
        i += 1

    # `run` is an alias so `python -m repro run --all` reads naturally.
    if names and names[0] == "run":
        names = names[1:] or ["all"]
    if "--all" in names:
        names = [n for n in names if n != "--all"] or ["all"]

    if names and names[0] == "observe":
        from repro.experiments.observe import SCENARIOS, observe_figure

        scenarios = names[1:] or ["scan"]
        unknown = [s for s in scenarios if s not in SCENARIOS]
        if unknown:
            print(
                f"unknown scenario(s): {', '.join(unknown)}"
                f" (choose from {', '.join(SCENARIOS)})",
                file=sys.stderr,
            )
            return 2
        for scenario in scenarios:
            if out_path is not None and len(scenarios) == 1:
                dest = out_path
            else:
                dest = f"observe-{scenario}.jsonl"
            if chrome_trace is not None and len(scenarios) == 1:
                chrome_dest = chrome_trace
            elif chrome_trace is not None:
                chrome_dest = f"observe-{scenario}.trace.json"
            else:
                chrome_dest = None
            report = observe_figure(scenario, out_path=dest,
                                    chrome_trace=chrome_dest)
            print(report.render())
            print()
        return 0

    if not names or names == ["list"]:
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  all")
        print("  observe")
        print(f"\n{USAGE}")
        return 0 if names else 2
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("run `python -m repro list` for the catalogue", file=sys.stderr)
        return 2

    all_stats = []
    with runner.configuration(jobs=jobs, use_cache=use_cache, cache_dir=cache_dir):
        runner.drain_stats()
        for name in names:
            result = EXPERIMENTS[name]()
            print(result.render())
            stats = runner.drain_stats()
            all_stats.extend(stats)
            _print_stats(stats)
            if plot:
                from repro.experiments.viz import plot_figure

                chart = plot_figure(result)
                if chart:
                    print()
                    print(chart)
            print()
    if metrics_out is not None:
        from repro.obs.export import run_stats_records, write_jsonl

        count = write_jsonl(Path(metrics_out), run_stats_records(all_stats))
        print(
            f"[metrics] wrote {count} record(s) to {metrics_out}",
            file=sys.stderr,
            flush=True,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
