"""Command-line entry point: run any reproduced experiment by name.

Usage::

    python -m repro list
    python -m repro fig2
    python -m repro fig7 table1 ablation-threshold
    python -m repro all
"""

from __future__ import annotations

import sys
from typing import Callable, Dict

from repro.experiments.ablations import (
    ablation_mac_increment,
    ablation_probe_placement,
    ablation_refresh_policy,
    ablation_threshold_vs_sort,
    lfs_ordering_experiment,
)
from repro.experiments.figures import (
    fig1_probe_correlation,
    fig2_single_file_scan,
    fig3_applications,
    fig4_multi_platform,
    fig5_file_ordering,
    fig6_aging_refresh,
    fig7_sort_mac,
    mac_available_memory,
)
from repro.experiments.tables import table1_prior_systems, table2_case_studies

EXPERIMENTS: Dict[str, Callable] = {
    "fig1": fig1_probe_correlation,
    "fig2": fig2_single_file_scan,
    "fig3": fig3_applications,
    "fig4": fig4_multi_platform,
    "fig5": fig5_file_ordering,
    "fig6": fig6_aging_refresh,
    "fig7": fig7_sort_mac,
    "mac-available": mac_available_memory,
    "table1": table1_prior_systems,
    "table2": table2_case_studies,
    "ablation-probe-placement": ablation_probe_placement,
    "ablation-threshold": ablation_threshold_vs_sort,
    "ablation-mac-increment": ablation_mac_increment,
    "ablation-refresh-policy": ablation_refresh_policy,
    "extension-lfs": lfs_ordering_experiment,
}


def main(argv) -> int:
    names = [a for a in argv[1:] if a != "--plot"]
    plot = "--plot" in argv[1:]
    if not names or names == ["list"]:
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  all")
        print("\nusage: python -m repro <name> [<name> ...]")
        return 0 if names else 2
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("run `python -m repro list` for the catalogue", file=sys.stderr)
        return 2
    for name in names:
        result = EXPERIMENTS[name]()
        print(result.render())
        if plot:
            from repro.experiments.viz import plot_figure

            chart = plot_figure(result)
            if chart:
                print()
                print(chart)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
