#!/usr/bin/env python
"""Offline import-hygiene check: a stdlib-only subset of ruff's F401/F811.

CI runs the real ``ruff check`` (see ``.github/workflows/ci.yml``); this
script exists for development environments that cannot install ruff.  It
walks the given packages and reports:

* imports never referenced in the module (F401) — names exported via
  ``__all__`` or re-exported with ``import x as x`` are exempt;
* the same name imported twice in one module scope (F811).

Usage::

    python tools/lint_imports.py src/repro/sim [more paths...]

Exits non-zero if any finding is reported.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple


def _imported_names(tree: ast.Module) -> List[Tuple[str, int, bool]]:
    """(bound_name, lineno, is_explicit_reexport) for every module-level import."""
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                reexport = alias.asname is not None and alias.asname == alias.name
                found.append((bound, node.lineno, reexport))
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                reexport = alias.asname is not None and alias.asname == alias.name
                found.append((bound, node.lineno, reexport))
    return found


def _used_names(tree: ast.Module) -> set:
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # the root of a dotted use: ``pkg.thing`` marks ``pkg`` used
            inner = node
            while isinstance(inner, ast.Attribute):
                inner = inner.value
            if isinstance(inner, ast.Name):
                used.add(inner.id)
    # String annotations ("Kernel") count as uses.
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            token = node.value.strip().strip("'\"")
            if token.isidentifier():
                used.add(token)
    return used


def _exported(tree: ast.Module) -> set:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets and isinstance(node.value, (ast.List, ast.Tuple)):
                return {
                    elt.value
                    for elt in node.value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                }
    return set()


def check_file(path: Path) -> Iterator[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    imports = _imported_names(tree)
    used = _used_names(tree)
    exported = _exported(tree)
    seen = {}
    for name, lineno, reexport in imports:
        if name in seen and lineno != seen[name]:
            yield f"{path}:{lineno}: F811 redefinition of imported {name!r} (first at line {seen[name]})"
        seen.setdefault(name, lineno)
        if reexport or name in exported or name == "annotations":
            continue
        if name not in used:
            yield f"{path}:{lineno}: F401 {name!r} imported but unused"


def main(argv: List[str]) -> int:
    roots = [Path(arg) for arg in argv] or [Path("src/repro/sim")]
    failures = 0
    for root in roots:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            for finding in check_file(path):
                print(finding)
                failures += 1
    if failures:
        print(f"{failures} finding(s)", file=sys.stderr)
        return 1
    print("import hygiene clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
